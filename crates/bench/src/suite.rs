//! The cross-figure suite engine: plan → union → schedule → stream.
//!
//! [`run_suite`] turns a list of figure specs into TSVs through four
//! phases:
//!
//! 1. **Plan.** Each figure enumerates its experiment cells without
//!    computing them ([`figures::plan`]).
//! 2. **Union.** The plans merge into one deduplicated work graph: one
//!    node per unique experiment construction, one per unique
//!    `(experiment, design)` run, and one per unique detailed-simulator
//!    cell, keyed by the same content fingerprints the [`CellCache`]
//!    uses. A cell shared by fig13/fig14/fig15 becomes a single node, no
//!    matter how many figures want it — and at equal `--accesses`, a
//!    validate mix-0 detailed cell is fig02's cell for that design.
//! 3. **Schedule.** The graph executes on the work-stealing pool
//!    ([`exec::sched`]), long poles first, writing every result through
//!    the process-wide cache — exactly where the render pass (and the
//!    standalone binaries) will look.
//! 4. **Stream.** Figures render in requested order, each the moment its
//!    last cell completes — a figure whose cells finished early emits
//!    while the pool is still chewing on later figures' work. Renders
//!    are pure cache hits, so output is byte-identical to the
//!    sequential path at every thread count.
//!
//! The plan is an *optimization contract*, not a correctness one: a cell
//! the plan missed is computed by the render as before (slow but right),
//! and `tests/plan_coverage.rs` keeps the plans exact. With tracing on,
//! the scheduler emits each unique cell's event stream exactly once (the
//! cache bypasses reads under tracing, so planned figures then render
//! against a no-op sink to avoid recomputing); with the cache disabled
//! (`--no-cache`) scheduling would be pure waste, so the suite falls
//! back to the sequential per-figure path.
//!
//! [`figures::plan`]: crate::figures::plan
//! [`CellCache`]: crate::cell_cache::CellCache
//! [`exec::sched`]: crate::exec::sched

// Wall-clock here feeds the suite's *stats* section only (lint.toml
// [paths].timing_allow), and every map is Mix64Build-hashed — clippy
// cannot see hasher parameters, jumanji-lint checks them precisely.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use crate::cell_cache::{run_key, CellCache, ExperimentHandle, RunSource};
use crate::disk_cache::MeasuredCosts;
use crate::exec::sched::{self, Graph, GraphReport};
use crate::figures::{self, plan};
use crate::spec::{ExperimentSpec, FigureKind};
use jumanji::prelude::*;
use jumanji::telemetry::NoopSink;
use jumanji::types::hash::Mix64Build;
use jumanji::types::Error;
use jumanji::workloads::WorkloadMix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// One rendered figure, handed to [`run_suite`]'s emit callback in
/// requested order, as soon as it is ready.
#[derive(Debug)]
pub struct SuiteFigure {
    /// Which figure this is.
    pub kind: FigureKind,
    /// The rendered TSV, byte-identical to the standalone binary.
    pub bytes: Vec<u8>,
    /// Wall-clock of the render pass alone (under the scheduler this is
    /// cache-hit time; sequentially it includes the compute).
    pub seconds: f64,
    /// Run cells this figure's render computed (cache misses during the
    /// render — zero when the plan covered the figure).
    pub computed: u64,
    /// Run cells served from cache during the render.
    pub reused: u64,
}

/// What the scheduler did for one [`run_suite`] call.
#[derive(Debug, Clone, Default)]
pub struct SchedReport {
    /// Design-run lookups the figures planned, before deduplication.
    pub planned_runs: usize,
    /// Unique work-graph nodes (experiment constructions + design runs).
    pub nodes: usize,
    /// Dependency edges in the graph.
    pub edges: usize,
    /// Detailed-cell lookups the figures planned, before deduplication.
    pub planned_details: usize,
    /// Run nodes served straight from the persistent disk store.
    pub disk_run_hits: u64,
    /// Run nodes the scheduler actually simulated this call.
    pub computed_runs: u64,
    /// Detailed-simulator nodes served from the persistent disk store.
    pub detail_disk_hits: u64,
    /// Detailed-simulator nodes the scheduler actually computed.
    pub detail_computed: u64,
    /// Experiment constructions skipped because every dependent run
    /// cell was already warm (in memory or on disk).
    pub warm_skipped_exps: u64,
    /// Prior-vs-measured cost drift, one row per design with measured
    /// data — what the long-pole priorities look like against the
    /// static guesses (empty when nothing was ever measured).
    pub drift: Vec<plan::CostDrift>,
    /// Pool execution measurements.
    pub graph: GraphReport,
}

/// The whole run's summary.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// Wall-clock of the whole call: plan + schedule + render + emit.
    pub total_seconds: f64,
    /// Scheduler measurements; `None` on the sequential path.
    pub sched: Option<SchedReport>,
}

/// A work-graph node: construct an experiment, run a design on one, or
/// run one detailed-simulator cell. The large variants are boxed so the
/// common `Run` variant stays a few bytes.
enum Node {
    Exp(Box<ExpCell>),
    Run { exp: u32, design: DesignKind },
    Detail(Box<plan::DetailPlan>),
}

/// An experiment node's inputs.
struct ExpCell {
    mix: WorkloadMix,
    load: LcLoad,
    opts: SimOptions,
}

/// The unioned work graph plus its figure bookkeeping.
struct Union {
    nodes: Vec<Node>,
    costs: Vec<f64>,
    deps: Vec<Vec<u32>>,
    /// Figure indices that need each node (for the streaming countdown).
    node_figures: Vec<Vec<u32>>,
    /// Per-figure node count (the countdown's starting value).
    figure_nodes: Vec<usize>,
    /// Per-node reconfiguration-interval count — the unit measured node
    /// durations are normalized by before they feed the cost store.
    intervals: Vec<u64>,
    /// For each `Exp` node: the run keys of its dependent `Run` nodes,
    /// so the scheduler can probe whether *every* consumer is already
    /// warm and skip the construction entirely. Empty for `Run` nodes.
    run_keys: Vec<Vec<u128>>,
    /// Total planned design runs before deduplication.
    planned_runs: usize,
    /// Total planned detailed cells before deduplication.
    planned_details: usize,
}

/// Unions figure plans into one deduplicated graph, costed by `model`
/// (static priors, or measured per-design durations on warm runs).
/// Nodes are keyed by the cell cache's content fingerprints, so two
/// figures (or two cells of one figure) wanting the same work share a
/// node; node ids grow in figure order, which the scheduler uses as its
/// priority tie-break so earlier-requested figures drain first.
fn union_plans(plans: &[plan::FigurePlan], model: &plan::CostModel) -> Union {
    let mut u = Union {
        nodes: Vec::new(),
        costs: Vec::new(),
        deps: Vec::new(),
        node_figures: Vec::new(),
        figure_nodes: vec![0; plans.len()],
        intervals: Vec::new(),
        run_keys: Vec::new(),
        planned_runs: 0,
        planned_details: 0,
    };
    let mut exp_ids: HashMap<u128, u32, Mix64Build> = HashMap::default();
    let mut run_ids: HashMap<u128, u32, Mix64Build> = HashMap::default();
    let mut detail_ids: HashMap<u128, u32, Mix64Build> = HashMap::default();
    for (f, plan) in plans.iter().enumerate() {
        let f32u = f as u32;
        for cell in &plan.cells {
            u.planned_runs += cell.designs.len();
            let intervals = plan::intervals_of(&cell.opts).round() as u64;
            let ekey = cell.experiment_key();
            let exp_id = *exp_ids.entry(ekey).or_insert_with(|| {
                let id = u.nodes.len() as u32;
                u.nodes.push(Node::Exp(Box::new(ExpCell {
                    mix: cell.mix.clone(),
                    load: cell.load,
                    opts: cell.opts.clone(),
                })));
                u.costs.push(model.experiment_cost(&cell.opts));
                u.deps.push(Vec::new());
                u.node_figures.push(Vec::new());
                u.intervals.push(intervals);
                u.run_keys.push(Vec::new());
                id
            });
            if u.node_figures[exp_id as usize].last() != Some(&f32u) {
                u.node_figures[exp_id as usize].push(f32u);
                u.figure_nodes[f] += 1;
            }
            for &design in &cell.designs {
                let rkey = run_key(ekey, design);
                let fresh = !run_ids.contains_key(&rkey);
                let run_id = *run_ids.entry(rkey).or_insert_with(|| {
                    let id = u.nodes.len() as u32;
                    u.nodes.push(Node::Run {
                        exp: exp_id,
                        design,
                    });
                    u.costs.push(model.run_cost(&cell.opts, design));
                    u.deps.push(vec![exp_id]);
                    u.node_figures.push(Vec::new());
                    u.intervals.push(intervals);
                    u.run_keys.push(Vec::new());
                    id
                });
                if fresh {
                    u.run_keys[exp_id as usize].push(rkey);
                }
                if u.node_figures[run_id as usize].last() != Some(&f32u) {
                    u.node_figures[run_id as usize].push(f32u);
                    u.figure_nodes[f] += 1;
                }
            }
        }
        // Detailed cells are root nodes: the allocation they simulate is
        // embedded in the plan, so they depend on no experiment node.
        for detail in &plan.details {
            u.planned_details += 1;
            let units = plan::detail_units(&detail.opts, detail.profiles.len());
            let detail_id = *detail_ids.entry(detail.key()).or_insert_with(|| {
                let id = u.nodes.len() as u32;
                u.costs
                    .push(model.detail_cost(&detail.opts, detail.profiles.len()));
                u.nodes.push(Node::Detail(Box::new(detail.clone())));
                u.deps.push(Vec::new());
                u.node_figures.push(Vec::new());
                u.intervals.push((units.round() as u64).max(1));
                u.run_keys.push(Vec::new());
                id
            });
            if u.node_figures[detail_id as usize].last() != Some(&f32u) {
                u.node_figures[detail_id as usize].push(f32u);
                u.figure_nodes[f] += 1;
            }
        }
    }
    u
}

/// The streaming countdown the scheduler decrements and the renderer
/// waits on.
struct Progress {
    state: Mutex<ProgressState>,
    ready: Condvar,
}

struct ProgressState {
    /// Unfinished nodes per figure.
    remaining: Vec<usize>,
    /// Set when the scheduler thread exits (normally or by panic), so
    /// waiters never hang — any still-missing cells are computed by the
    /// render itself.
    finished: bool,
}

impl Progress {
    fn wait_for(&self, figure: usize) {
        let mut st = self.state.lock().expect("progress lock");
        while st.remaining[figure] > 0 && !st.finished {
            st = self.ready.wait(st).expect("progress lock");
        }
    }
}

/// Sets `finished` and wakes every waiter when dropped — including
/// during a panic unwind of the scheduler thread.
struct FinishGuard<'a>(&'a Progress);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.state.lock().expect("progress lock").finished = true;
        self.0.ready.notify_all();
    }
}

/// Renders `spec` into a buffer with run-cell accounting, emitting
/// through `tel`.
fn render_figure(
    spec: &ExperimentSpec,
    tel: &dyn Telemetry,
    cache: &CellCache,
) -> Result<SuiteFigure, Error> {
    let before = cache.stats();
    let start = Instant::now();
    let mut bytes = Vec::new();
    figures::emit(spec, tel, &mut bytes)?;
    let after = cache.stats();
    Ok(SuiteFigure {
        kind: spec.kind,
        bytes,
        seconds: start.elapsed().as_secs_f64(),
        computed: (after.runs.misses - before.runs.misses)
            + (after.details.misses - before.details.misses),
        reused: (after.runs.hits - before.runs.hits) + (after.details.hits - before.details.hits),
    })
}

/// Runs the suite over `specs`, calling `emit` once per figure in
/// `specs` order, each as soon as it is ready.
///
/// With `sequential` false and the cache enabled, the cross-figure work
/// graph executes on `threads` workers and figures stream as their cells
/// complete; otherwise figures render one at a time (today's behavior —
/// also used as the A/B baseline by the `timings` binary). Telemetry
/// goes to `tel` in both modes; the specs' own `trace`/`telemetry`
/// fields are ignored.
///
/// Output bytes are identical in both modes at every thread count: the
/// renders read through the same [`CellCache`], which is value-
/// transparent.
///
/// # Errors
///
/// Propagates plan errors (unknown workloads), figure render errors, and
/// `emit` errors.
pub fn run_suite(
    specs: &[ExperimentSpec],
    threads: usize,
    sequential: bool,
    tel: &dyn Telemetry,
    emit: &mut dyn FnMut(SuiteFigure) -> Result<(), Error>,
) -> Result<SuiteReport, Error> {
    let cache = CellCache::global();
    let start = Instant::now();
    if sequential || !cache.enabled() {
        for spec in specs {
            emit(render_figure(spec, tel, cache)?)?;
        }
        return Ok(SuiteReport {
            total_seconds: start.elapsed().as_secs_f64(),
            sched: None,
        });
    }

    let plans: Vec<plan::FigurePlan> = specs.iter().map(plan::of).collect::<Result<_, _>>()?;
    // Cost the graph with measured durations from the persistent store
    // when it has seen real runs; the static priors otherwise.
    let loaded_costs = cache.disk().map(|d| d.load_costs()).unwrap_or_default();
    let model = if loaded_costs.is_empty() {
        plan::CostModel::priors()
    } else {
        plan::CostModel::from_measured(loaded_costs)
    };
    let union = union_plans(&plans, &model);
    let graph = Graph::new(&union.costs, union.deps.clone());
    let progress = Progress {
        state: Mutex::new(ProgressState {
            remaining: union.figure_nodes.clone(),
            finished: false,
        }),
        ready: Condvar::new(),
    };
    // Experiment handles flow from Exp nodes to their Run dependents.
    let slots: Vec<OnceLock<ExperimentHandle>> =
        (0..union.nodes.len()).map(|_| OnceLock::new()).collect();
    // Run-cell lookups the scheduler issued; the streaming renders
    // subtract the overlap so their cache-delta accounting isn't
    // polluted by later figures' cells computing concurrently.
    // Incremented *before* the lookup so a straddling node can only
    // under-count a render's misses, never invent one.
    let sched_lookups = AtomicU64::new(0);
    // What each node actually did, written by the workers and read
    // after the pool drains: only COMPUTED nodes feed their measured
    // duration back into the persistent cost table (warm nodes finish
    // in microseconds and would poison the priors).
    const WARM: u8 = 0;
    const COMPUTED: u8 = 1;
    const FROM_DISK: u8 = 2;
    let node_state: Vec<AtomicU8> = (0..union.nodes.len())
        .map(|_| AtomicU8::new(WARM))
        .collect();

    let run_node = |i: usize| {
        match &union.nodes[i] {
            Node::Exp(cell) => {
                let handle = cache.experiment(cell.mix.clone(), cell.load, cell.opts.clone());
                // Warm start: when every dependent run cell is already
                // resident (in memory or on disk), the construction is
                // pure waste — leave the handle lazy and let the run
                // nodes serve from cache. Tracing bypasses cache reads,
                // so a traced suite always constructs.
                let cold =
                    tel.enabled() || union.run_keys[i].iter().any(|&rk| !cache.probe_run(rk));
                if cold {
                    cache.force_experiment(&handle);
                    node_state[i].store(COMPUTED, Ordering::Relaxed);
                }
                slots[i].set(handle).expect("each node runs once");
            }
            Node::Run { exp, design } => {
                let handle = slots[*exp as usize]
                    .get()
                    .expect("dependency completed first");
                sched_lookups.fetch_add(1, Ordering::SeqCst);
                let (_, source) = cache.run_sourced(handle, *design, tel);
                let state = match source {
                    RunSource::Computed => COMPUTED,
                    RunSource::Disk => FROM_DISK,
                    RunSource::Memory => WARM,
                };
                node_state[i].store(state, Ordering::Relaxed);
            }
            Node::Detail(d) => {
                sched_lookups.fetch_add(1, Ordering::SeqCst);
                let (_, source) =
                    cache.run_detail_sourced(&d.opts, &d.profiles, &d.cores, &d.vms, &d.alloc, tel);
                let state = match source {
                    RunSource::Computed => COMPUTED,
                    RunSource::Disk => FROM_DISK,
                    RunSource::Memory => WARM,
                };
                node_state[i].store(state, Ordering::Relaxed);
            }
        }
        let mut st = progress.state.lock().expect("progress lock");
        let mut completed_a_figure = false;
        for &f in &union.node_figures[i] {
            st.remaining[f as usize] -= 1;
            completed_a_figure |= st.remaining[f as usize] == 0;
        }
        drop(st);
        if completed_a_figure {
            progress.ready.notify_all();
        }
    };

    let mut report = SuiteReport::default();
    let mut emit_err: Option<Error> = None;
    let graph_report: Mutex<GraphReport> = Mutex::new(GraphReport::default());
    std::thread::scope(|scope| {
        let (progress, run_node, graph, graph_report) =
            (&progress, &run_node, &graph, &graph_report);
        scope.spawn(move || {
            let _finish = FinishGuard(progress);
            let r = sched::run_graph(graph, threads, tel, run_node);
            *graph_report.lock().expect("report lock") = r;
        });
        for (f, spec) in specs.iter().enumerate() {
            progress.wait_for(f);
            // Planned figures re-read their cells from the cache; under
            // tracing their event streams were already emitted (exactly
            // once per unique cell) by the scheduler, so the render uses
            // a no-op sink. Unplanned figures compute here and trace
            // normally.
            let render_tel: &dyn Telemetry = if tel.enabled() && !plans[f].is_empty() {
                &NoopSink
            } else {
                tel
            };
            let overlap_before = sched_lookups.load(Ordering::SeqCst);
            let result = render_figure(spec, render_tel, cache).map(|mut fig| {
                // Later figures' cells may compute concurrently during
                // this render; their lookups are not this figure's.
                let overlap = sched_lookups.load(Ordering::SeqCst) - overlap_before;
                fig.computed = fig.computed.saturating_sub(overlap);
                fig
            });
            let result = result.and_then(&mut *emit);
            if let Err(e) = result {
                emit_err = Some(e);
                break;
            }
        }
    });
    if let Some(e) = emit_err {
        return Err(e);
    }
    let graph_report = graph_report.into_inner().expect("report lock");

    // Feed the durations of genuinely computed nodes back into the
    // persistent cost table, so the *next* run's long-pole priorities
    // come from measurement instead of the static guesses.
    let mut measured = MeasuredCosts::default();
    let mut disk_run_hits = 0u64;
    let mut computed_runs = 0u64;
    let mut warm_skipped_exps = 0u64;
    let mut detail_disk_hits = 0u64;
    let mut detail_computed = 0u64;
    if graph_report.node_us.len() == union.nodes.len() {
        for (i, node) in union.nodes.iter().enumerate() {
            let state = node_state[i].load(Ordering::Relaxed);
            match node {
                Node::Exp(_) => {
                    if state == COMPUTED {
                        measured.record_exp(union.intervals[i], graph_report.node_us[i]);
                    } else {
                        warm_skipped_exps += 1;
                    }
                }
                Node::Run { design, .. } => match state {
                    COMPUTED => {
                        computed_runs += 1;
                        measured.record_run(*design, union.intervals[i], graph_report.node_us[i]);
                    }
                    FROM_DISK => disk_run_hits += 1,
                    _ => {}
                },
                Node::Detail(_) => match state {
                    COMPUTED => {
                        detail_computed += 1;
                        measured.record_detail(union.intervals[i] as f64, graph_report.node_us[i]);
                    }
                    FROM_DISK => detail_disk_hits += 1,
                    _ => {}
                },
            }
        }
    }
    let mut combined = loaded_costs;
    combined.merge(&measured);
    if let Some(disk) = cache.disk() {
        if !measured.is_empty() {
            disk.merge_costs(&measured);
        }
    }

    report.total_seconds = start.elapsed().as_secs_f64();
    report.sched = Some(SchedReport {
        planned_runs: union.planned_runs,
        planned_details: union.planned_details,
        nodes: graph.len(),
        edges: graph.edges(),
        disk_run_hits,
        computed_runs,
        detail_disk_hits,
        detail_computed,
        warm_skipped_exps,
        drift: plan::CostModel::from_measured(combined).drift(),
        graph: graph_report,
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs_of(kinds: &[FigureKind], mixes: usize) -> Vec<ExperimentSpec> {
        kinds
            .iter()
            .map(|&k| ExperimentSpec::new(k).mixes(mixes).threads(2))
            .collect()
    }

    #[test]
    fn union_dedups_shared_cells_across_figures() {
        // fig13 and fig14 plan identical matrices; the union must cost
        // exactly one figure's worth of unique nodes.
        let specs = specs_of(&[FigureKind::Fig13, FigureKind::Fig14], 2);
        let plans: Vec<_> = specs.iter().map(|s| plan::of(s).unwrap()).collect();
        let both = union_plans(&plans, &plan::CostModel::priors());
        let alone = union_plans(&plans[..1], &plan::CostModel::priors());
        assert_eq!(both.nodes.len(), alone.nodes.len());
        assert_eq!(both.planned_runs, 2 * alone.planned_runs);
        // Every node is needed by both figures.
        assert!(both.node_figures.iter().all(|fs| fs == &[0, 1]));
        assert_eq!(both.figure_nodes, vec![both.nodes.len(); 2]);
    }

    #[test]
    fn union_runs_depend_on_their_experiment() {
        let specs = specs_of(&[FigureKind::Fig05], 1);
        let plans: Vec<_> = specs.iter().map(|s| plan::of(s).unwrap()).collect();
        let u = union_plans(&plans, &plan::CostModel::priors());
        // One experiment node + five design runs on it.
        assert_eq!(u.nodes.len(), 6);
        for (i, node) in u.nodes.iter().enumerate() {
            match node {
                Node::Exp(_) => assert!(u.deps[i].is_empty()),
                Node::Run { exp, .. } => assert_eq!(u.deps[i], vec![*exp]),
                Node::Detail(_) => unreachable!("fig05 plans no detailed cells"),
            }
        }
        // The graph orders the long poles: every run's priority is below
        // its experiment's (the experiment unlocks the whole cell).
        let g = Graph::new(&u.costs, u.deps.clone());
        assert!(g.priority(0) > g.priority(1));
    }

    #[test]
    fn union_dedups_detailed_cells_across_fig02_and_validate() {
        // At equal --accesses, validate's mix-0 cells for its two
        // designs are byte-for-byte fig02's cells: same profiles, same
        // seed, same allocation. The union must schedule each once.
        let specs: Vec<ExperimentSpec> = [FigureKind::Fig02, FigureKind::Validate]
            .iter()
            .map(|&k| ExperimentSpec::new(k).mixes(2).accesses(4_000).threads(2))
            .collect();
        let plans: Vec<_> = specs.iter().map(|s| plan::of(s).unwrap()).collect();
        let u = union_plans(&plans, &plan::CostModel::priors());
        let detail_nodes = u
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Detail(_)))
            .count();
        assert_eq!(
            u.planned_details,
            plans[0].details.len() + plans[1].details.len()
        );
        // fig02 plans 4 designs, validate 2 designs × 2 mixes; the two
        // mix-0 validate cells fold into fig02's.
        assert_eq!(u.planned_details, 8);
        assert_eq!(detail_nodes, 6);
        // Detail nodes are roots: no dependencies, and nothing to
        // warm-skip through run_keys.
        for (i, node) in u.nodes.iter().enumerate() {
            if matches!(node, Node::Detail(_)) {
                assert!(u.deps[i].is_empty());
                assert!(u.run_keys[i].is_empty());
            }
        }
    }

    #[test]
    fn union_ids_grow_in_figure_order() {
        // fig05's single cell plans before fig18's cells, so its node
        // ids come first — the scheduler's tie-break then favors
        // earlier-requested figures for streaming.
        let specs = specs_of(&[FigureKind::Fig05, FigureKind::Fig18], 1);
        let plans: Vec<_> = specs.iter().map(|s| plan::of(s).unwrap()).collect();
        let u = union_plans(&plans, &plan::CostModel::priors());
        let first_fig18 = u
            .node_figures
            .iter()
            .position(|fs| fs.contains(&1))
            .expect("fig18 has nodes");
        assert!(u.node_figures[..first_fig18].iter().all(|fs| fs == &[0]));
    }
}
