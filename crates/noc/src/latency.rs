//! Unloaded latency model for the mesh NoC.
//!
//! Latency of a message = hops × (router + link) + (flits − 1) serialization
//! at the destination. Requests are single-flit control messages; responses
//! carry a 64 B line (4 flits at 128-bit links, Table II).

use nuca_types::{BankId, CoreId, Cycles, Mesh, NocConfig, SystemConfig, TileCoord};

/// Latency calculator for a mesh NoC with X-Y routing.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct MeshNoc {
    mesh: Mesh,
    noc: NocConfig,
    line_bytes: u64,
    mem_latency: Cycles,
}

impl MeshNoc {
    /// Builds the latency model from a system configuration.
    pub fn new(cfg: &SystemConfig) -> MeshNoc {
        MeshNoc {
            mesh: cfg.mesh(),
            noc: cfg.noc,
            line_bytes: cfg.llc.line_bytes,
            mem_latency: cfg.mem.latency,
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// One-way latency for a message of `payload_bytes` over `hops` hops.
    ///
    /// Zero-hop messages still pay serialization if multi-flit (the payload
    /// must cross the bank/core interface), but no router/link latency.
    pub fn oneway(&self, hops: usize, payload_bytes: u64) -> Cycles {
        let flits = self.noc.flits_for_bytes(payload_bytes.max(1));
        let transit = self.noc.hop_latency().as_u64() * hops as u64;
        Cycles(transit + (flits - 1))
    }

    /// Round-trip latency of an LLC access from `core` to `bank`, excluding
    /// the bank's own access latency: a 1-flit request plus a line-sized
    /// response.
    pub fn llc_round_trip(&self, core: CoreId, bank: BankId) -> Cycles {
        let hops = self.mesh.hops_core_to_bank(core, bank);
        self.oneway(hops, 8) + self.oneway(hops, self.line_bytes)
    }

    /// Round-trip latency for `hops` hops (request + line response), used
    /// by the analytic model with fractional average distances.
    pub fn round_trip_for_hops(&self, hops: f64) -> f64 {
        let per_hop = self.noc.hop_latency().as_u64() as f64;
        let req_ser = (self.noc.flits_for_bytes(8) - 1) as f64;
        let resp_ser = (self.noc.flits_for_bytes(self.line_bytes) - 1) as f64;
        2.0 * hops * per_hop + req_ser + resp_ser
    }

    /// Additional latency of an LLC miss serviced by the nearest memory
    /// controller (bank → corner MC → DRAM → bank), excluding queueing.
    pub fn miss_penalty(&self, bank: BankId) -> Cycles {
        let hops = self.mesh.hops_to_nearest_corner(self.mesh.bank_tile(bank));
        self.oneway(hops, 8) + self.mem_latency + self.oneway(hops, self.line_bytes)
    }

    /// Average miss penalty over all banks (used when data placement is not
    /// bank-resolved in the analytic model).
    pub fn avg_miss_penalty(&self) -> f64 {
        let n = self.mesh.num_tiles();
        (0..n)
            .map(|b| self.miss_penalty(BankId(b)).as_u64() as f64)
            .sum::<f64>()
            / n as f64
    }

    /// Hop distance from a tile to the nearest memory controller corner.
    pub fn mem_hops(&self, tile: TileCoord) -> usize {
        self.mesh.hops_to_nearest_corner(tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_types::SystemConfig;

    fn noc() -> MeshNoc {
        MeshNoc::new(&SystemConfig::micro2020())
    }

    #[test]
    fn oneway_zero_hops_single_flit_is_free() {
        assert_eq!(noc().oneway(0, 8), Cycles(0));
    }

    #[test]
    fn oneway_accounts_for_serialization() {
        let n = noc();
        // 64 B = 4 flits: 3 serialization cycles on top of transit.
        assert_eq!(n.oneway(2, 64), Cycles(2 * 3 + 3));
        assert_eq!(n.oneway(0, 64), Cycles(3));
    }

    #[test]
    fn round_trip_matches_components() {
        let n = noc();
        let rt = n.llc_round_trip(CoreId(0), BankId(1)); // 1 hop
                                                         // Request: 3 cycles transit. Response: 3 transit + 3 serialization.
        assert_eq!(rt, Cycles(3 + 6));
        // Fractional version agrees at integer hops.
        assert_eq!(n.round_trip_for_hops(1.0), 9.0);
    }

    #[test]
    fn local_bank_cheaper_than_remote() {
        let n = noc();
        let local = n.llc_round_trip(CoreId(0), BankId(0));
        let remote = n.llc_round_trip(CoreId(0), BankId(19));
        assert_eq!(local, Cycles(3)); // only response serialization
        assert_eq!(remote, Cycles(7 * 3 + 7 * 3 + 3));
        assert!(remote > local);
    }

    #[test]
    fn miss_penalty_includes_dram_latency() {
        let n = noc();
        // Bank 0 is itself a corner: no hops, just serialization + DRAM.
        assert_eq!(n.miss_penalty(BankId(0)), Cycles(120 + 3));
        // Center banks pay hops to a corner both ways.
        let center = n.miss_penalty(BankId(7)); // tile (2,1): 3 hops
        assert_eq!(center, Cycles(3 * 3 + 120 + 3 * 3 + 3));
        let avg = n.avg_miss_penalty();
        assert!(avg > 123.0 && avg < center.as_u64() as f64 + 1.0);
    }
}
