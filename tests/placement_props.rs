//! Property-based tests over the placement algorithms: for arbitrary
//! (well-formed) inputs, every design must produce capacity-conserving
//! allocations, Jumanji must isolate VMs, and the controller-assigned
//! latency-critical sizes must be honoured.

use jumanji::cache::MissCurve;
use jumanji::core::{AppKind, AppModel, DesignKind, PlacementInput};
use jumanji::prelude::*;
use jumanji::types::{AppId, BankId, CoreId, VmId};
use proptest::prelude::*;

const MB: f64 = 1048576.0;

/// Builds a random but well-formed placement input: 4 VMs in quadrants,
/// per-app random working sets, rates, and LC sizes.
fn arb_input() -> impl Strategy<Value = PlacementInput> {
    let app = (10.0f64..200.0, 1.0f64..30.0, 0.2f64..1.0);
    (
        proptest::collection::vec(app, 20),
        proptest::collection::vec(0.5f64..4.5, 4),
    )
        .prop_map(|(apps_params, lc_sizes_mb)| {
            let cfg = SystemConfig::micro2020();
            let unit = cfg.llc.way_bytes();
            let units = cfg.llc.total_ways() as usize;
            let quadrants: [[usize; 5]; 4] = [
                [0, 1, 5, 6, 2],
                [4, 3, 9, 8, 7],
                [15, 16, 10, 11, 12],
                [19, 18, 14, 13, 17],
            ];
            let mut apps = Vec::new();
            let mut lc_sizes = Vec::new();
            for (vm, cores) in quadrants.iter().enumerate() {
                for (i, &core) in cores.iter().enumerate() {
                    let id = AppId(apps.len());
                    let (ws_units, rate_scale, drop) = apps_params[apps.len()];
                    let kind = if i == 0 {
                        AppKind::LatencyCritical
                    } else {
                        AppKind::Batch
                    };
                    let pts: Vec<f64> = (0..=units)
                        .map(|u| {
                            let base = 1e7 * rate_scale;
                            base * (1.0 - drop) + base * drop / (1.0 + u as f64 / ws_units)
                        })
                        .collect();
                    apps.push(AppModel {
                        id,
                        vm: VmId(vm),
                        core: CoreId(core),
                        kind,
                        curve: MissCurve::new(unit, pts).convex_hull(),
                        access_rate: 1e7 * rate_scale,
                    });
                    lc_sizes.push(if kind == AppKind::LatencyCritical {
                        lc_sizes_mb[vm] * MB
                    } else {
                        0.0
                    });
                }
            }
            PlacementInput {
                cfg: std::sync::Arc::new(cfg),
                apps,
                lc_sizes,
            }
        })
}

/// Brute-force UCP Lookahead: the plain chunk-scan greedy from the paper,
/// with no convexity fast path — repeatedly grant the (curve, chunk) with
/// the highest average marginal utility (strict `>`, so ties go to the
/// first candidate scanned), then spread useless leftovers round-robin.
fn lookahead_reference(curves: &[&MissCurve], total_units: usize) -> Vec<usize> {
    let n = curves.len();
    let mut alloc = vec![0usize; n];
    let mut remaining = total_units;
    while remaining > 0 {
        let mut best: Option<(usize, usize)> = None;
        let mut best_mu = 0.0f64;
        for (i, c) in curves.iter().enumerate() {
            let have = alloc[i];
            let max_k = c.max_units().saturating_sub(have).min(remaining);
            let base = c.at(have);
            for k in 1..=max_k {
                let mu = (base - c.at(have + k)) / k as f64;
                if mu > best_mu {
                    best_mu = mu;
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, k)) if best_mu > 0.0 => {
                alloc[i] += k;
                remaining -= k;
            }
            _ => break,
        }
    }
    let mut i = 0;
    let mut stuck = 0;
    while remaining > 0 && stuck < n {
        if alloc[i] < curves[i].max_units() {
            alloc[i] += 1;
            remaining -= 1;
            stuck = 0;
        } else {
            stuck += 1;
        }
        i = (i + 1) % n;
    }
    alloc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_design_conserves_capacity(input in arb_input()) {
        for design in DesignKind::all() {
            let alloc = design.allocate(&input);
            prop_assert!(alloc.validate(&input.cfg).is_ok(), "{design}");
        }
    }

    #[test]
    fn jumanji_always_isolates_vms(input in arb_input()) {
        let alloc = DesignKind::Jumanji.allocate(&input);
        prop_assert!(alloc.vm_isolated(&input));
        // Every app's vulnerability is exactly zero.
        for a in &input.apps {
            prop_assert_eq!(alloc.attackers(&input, a.id), 0.0);
        }
    }

    #[test]
    fn tail_aware_designs_honour_lc_sizes(input in arb_input()) {
        for design in [DesignKind::Adaptive, DesignKind::VmPart, DesignKind::Jumanji] {
            let alloc = design.allocate(&input);
            for a in &input.apps {
                if a.kind == AppKind::LatencyCritical {
                    let got = alloc.of(a.id).total_bytes();
                    let want = input.lc_size(a.id);
                    prop_assert!(
                        (got - want).abs() < 1.0,
                        "{design}: {} got {got} wanted {want}", a.id
                    );
                }
            }
        }
    }

    #[test]
    fn dnuca_designs_place_closer_than_snuca(input in arb_input()) {
        let snuca = DesignKind::Adaptive.allocate(&input);
        let jumanji = DesignKind::Jumanji.allocate(&input);
        let avg = |alloc: &jumanji::core::Allocation| -> f64 {
            input
                .apps
                .iter()
                .map(|a| alloc.avg_distance(&input, a.id))
                .sum::<f64>()
                / input.apps.len() as f64
        };
        prop_assert!(avg(&jumanji) < avg(&snuca));
    }

    #[test]
    fn whole_llc_is_allocated_by_jumanji(input in arb_input()) {
        let alloc = DesignKind::Jumanji.allocate(&input);
        let total: f64 = input
            .apps
            .iter()
            .map(|a| alloc.of(a.id).total_bytes())
            .sum();
        let llc = input.cfg.llc.total_bytes() as f64;
        // Sub-unit rounding slack only.
        prop_assert!(total > 0.97 * llc, "allocated {total} of {llc}");
    }

    #[test]
    fn lookahead_matches_chunk_scan_reference(
        raw in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1000.0, 2..10),
            2..6,
        ),
        total in 0usize..16,
    ) {
        // A guaranteed-non-convex cliff curve pins the production code to
        // its chunk-scan path (the convex fast path requires *all* curves
        // convex); the reference below is the textbook UCP loop, so any
        // divergence in the optimized implementation shows up as a
        // different allocation vector.
        let mut curves: Vec<MissCurve> =
            raw.into_iter().map(|pts| MissCurve::new(64, pts)).collect();
        curves.push(MissCurve::new(64, vec![500.0, 500.0, 500.0, 0.0]));
        let refs: Vec<&MissCurve> = curves.iter().collect();
        prop_assert!(!refs.iter().all(|c| c.is_convex()));
        prop_assert_eq!(
            jumanji::core::lookahead::lookahead(&refs, total),
            lookahead_reference(&refs, total)
        );
    }

    #[test]
    fn lookahead_convex_fast_path_matches_chunk_scan(
        raw in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1000.0, 2..12),
            2..6,
        ),
        total in 0usize..24,
    ) {
        // Convex hulls force the heap-based fast path. Its grant sequence
        // can break exact ties differently from the chunk scan (the
        // chunked average `(base - at(have+k)) / k` rounds independently
        // of the unit gain), but on convex curves both are greedy-optimal:
        // they must allocate the same total capacity and save the same
        // number of misses.
        let curves: Vec<MissCurve> = raw
            .into_iter()
            .map(|pts| MissCurve::new(64, pts).convex_hull())
            .collect();
        for c in &curves {
            prop_assert!(c.is_convex());
        }
        let refs: Vec<&MissCurve> = curves.iter().collect();
        let fast = jumanji::core::lookahead::lookahead(&refs, total);
        let scan = lookahead_reference(&refs, total);
        prop_assert_eq!(
            fast.iter().sum::<usize>(),
            scan.iter().sum::<usize>()
        );
        let misses = |alloc: &[usize]| -> f64 {
            alloc.iter().zip(&refs).map(|(&u, c)| c.at(u)).sum()
        };
        let (mf, ms) = (misses(&fast), misses(&scan));
        prop_assert!(
            (mf - ms).abs() <= 1e-6 * (1.0 + ms.abs()),
            "fast path {mf} vs chunk scan {ms}: {fast:?} vs {scan:?}"
        );
    }

    #[test]
    fn occupants_reflect_placements(input in arb_input()) {
        let alloc = DesignKind::Jigsaw.allocate(&input);
        for bank in 0..input.cfg.llc.num_banks {
            for app in alloc.occupants(BankId(bank)) {
                let holds = alloc
                    .placement_of(app)
                    .iter()
                    .any(|(b, bytes)| b.index() == bank && *bytes > 0.0);
                prop_assert!(holds);
            }
        }
    }
}
