//! The LLC port attack (paper Sec. VI-B, Fig. 11).
//!
//! An attacker thread floods one target LLC bank with back-to-back
//! accesses and times every 100 of them. A multi-threaded victim rotates
//! through flooding each LLC bank, pausing between banks. Two effects are
//! visible in the attacker's timing:
//!
//! - whenever the victim is active *anywhere*, shared NoC links add a
//!   small delay (12 bumps, one per bank the victim visits), and
//! - when the victim floods the **same** bank as the attacker, port
//!   queueing adds a much larger delay — revealing which bank the victim
//!   uses.

use nuca_noc::BankPorts;
use nuca_types::Cycles;

/// Configuration of the port-attack demonstration. Defaults mirror the
/// paper's Xeon E5-2650 v4 demo: 12 banks, a 3-thread victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortAttackConfig {
    /// Number of LLC banks the victim rotates through.
    pub banks: usize,
    /// The bank the attacker targets.
    pub attacker_bank: usize,
    /// Victim threads flooding concurrently.
    pub victim_threads: u32,
    /// Outstanding accesses per victim thread (memory-level parallelism of
    /// the flooding loop).
    pub victim_mlp: u32,
    /// Cycles the victim floods each bank.
    pub flood_cycles: u64,
    /// Cycles the victim pauses between banks.
    pub pause_cycles: u64,
    /// Port occupancy per access (cycles).
    pub port_occupancy: u64,
    /// Attacker's round-trip overhead between successive accesses
    /// (network + bank latency outside the port).
    pub attacker_overhead: u64,
    /// Extra per-access NoC contention whenever the victim is active.
    pub noc_contention: f64,
    /// Accesses per timing sample (100 in the paper, to amortize timing
    /// overheads).
    pub sample_every: usize,
    /// Total attacker accesses to simulate.
    pub total_accesses: usize,
}

impl Default for PortAttackConfig {
    fn default() -> PortAttackConfig {
        PortAttackConfig {
            banks: 12,
            attacker_bank: 0,
            victim_threads: 3,
            victim_mlp: 4,
            flood_cycles: 150_000,
            pause_cycles: 75_000,
            port_occupancy: 4,
            attacker_overhead: 24,
            noc_contention: 3.0,
            sample_every: 100,
            total_accesses: 150_000,
        }
    }
}

/// One timing sample: wall-clock cycle and average cycles per access over
/// the sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSample {
    /// Cycle at the end of the window.
    pub at: u64,
    /// Average access time over the window.
    pub cycles_per_access: f64,
    /// Which bank the victim was flooding at the window end (`None` =
    /// paused/idle).
    pub victim_bank: Option<usize>,
}

/// The attacker's observed timing trace.
#[derive(Debug, Clone)]
pub struct PortAttackTrace {
    /// Timing samples in wall-clock order.
    pub samples: Vec<TimingSample>,
    cfg: PortAttackConfig,
}

impl PortAttackTrace {
    /// Mean cycles/access over samples matching a predicate on the
    /// victim's bank.
    fn mean_where(&self, pred: impl Fn(Option<usize>) -> bool) -> f64 {
        let picked: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| pred(s.victim_bank))
            .map(|s| s.cycles_per_access)
            .collect();
        if picked.is_empty() {
            return 0.0;
        }
        picked.iter().sum::<f64>() / picked.len() as f64
    }

    /// Mean access time while the victim is idle.
    pub fn baseline(&self) -> f64 {
        self.mean_where(|b| b.is_none())
    }

    /// Mean access time while the victim floods a *different* bank (NoC
    /// contention only).
    pub fn other_bank_level(&self) -> f64 {
        let ab = self.cfg.attacker_bank;
        self.mean_where(|b| b.is_some() && b != Some(ab))
    }

    /// Mean access time while the victim floods the attacker's bank (NoC
    /// plus port contention).
    pub fn same_bank_level(&self) -> f64 {
        let ab = self.cfg.attacker_bank;
        self.mean_where(|b| b == Some(ab))
    }

    /// Whether the attacker can distinguish the victim's target bank: the
    /// same-bank level must exceed every other level by `margin` cycles.
    pub fn detects_victim(&self, margin: f64) -> bool {
        self.same_bank_level() > self.other_bank_level() + margin
            && self.same_bank_level() > self.baseline() + margin
    }
}

/// Where the victim is at cycle `t`: flooding `Some(bank)` or paused.
fn victim_bank_at(cfg: &PortAttackConfig, t: u64) -> Option<usize> {
    let period = cfg.flood_cycles + cfg.pause_cycles;
    let rotation = period * cfg.banks as u64;
    let in_rot = t % rotation;
    let bank = (in_rot / period) as usize;
    let in_period = in_rot % period;
    if in_period < cfg.flood_cycles {
        Some(bank)
    } else {
        None
    }
}

/// Runs the attack and returns the attacker's timing trace.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero banks/samples).
pub fn run_port_attack(cfg: PortAttackConfig) -> PortAttackTrace {
    assert!(cfg.banks > 0 && cfg.sample_every > 0 && cfg.total_accesses > 0);
    assert!(cfg.attacker_bank < cfg.banks);
    let mut port = BankPorts::new(1, Cycles(cfg.port_occupancy));
    let mut samples = Vec::new();
    let mut t: u64 = 0;
    let mut window_start: u64 = 0;
    // Closed-loop victim threads: each keeps `victim_mlp` accesses in
    // flight while the victim floods the attacker's bank (a flooding loop
    // issues independent loads back to back). A little deterministic
    // jitter prevents artificial phase-locking with the attacker.
    let mut victim_issue: Vec<u64> = vec![0; cfg.victim_threads as usize];
    let mut victim_on_bank = false;
    let mut jitter_state: u64 = 0x1234_5678;
    let mut jitter = move || {
        jitter_state = jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        jitter_state >> 61 // 0..8
    };
    for i in 0..cfg.total_accesses {
        let vb = victim_bank_at(&cfg, t);
        if vb == Some(cfg.attacker_bank) {
            if !victim_on_bank {
                victim_issue.fill(t); // threads just arrived at this bank
                victim_on_bank = true;
            }
            // Serve victim bursts issued before the attacker's arrival.
            loop {
                let (idx, &issue) = victim_issue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| v)
                    .expect("at least one victim thread");
                if issue > t {
                    break;
                }
                let mut last_done = issue;
                for k in 0..cfg.victim_mlp {
                    let grant = port.request(Cycles(issue + k as u64));
                    last_done = grant.done.as_u64();
                }
                victim_issue[idx] = last_done + cfg.attacker_overhead + jitter();
            }
        } else {
            victim_on_bank = false;
        }
        let grant = port.request(Cycles(t));
        let mut done = grant.done.as_u64() + cfg.attacker_overhead;
        if vb.is_some() {
            done += cfg.noc_contention as u64;
        }
        t = done;
        if (i + 1) % cfg.sample_every == 0 {
            samples.push(TimingSample {
                at: t,
                cycles_per_access: (t - window_start) as f64 / cfg.sample_every as f64,
                victim_bank: victim_bank_at(&cfg, t),
            });
            window_start = t;
        }
    }
    PortAttackTrace { samples, cfg }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_schedule_rotates_through_banks() {
        let cfg = PortAttackConfig::default();
        assert_eq!(victim_bank_at(&cfg, 0), Some(0));
        assert_eq!(victim_bank_at(&cfg, cfg.flood_cycles), None);
        let period = cfg.flood_cycles + cfg.pause_cycles;
        assert_eq!(victim_bank_at(&cfg, period), Some(1));
        assert_eq!(victim_bank_at(&cfg, period * 11), Some(11));
    }

    #[test]
    fn attacker_detects_same_bank_flooding() {
        let trace = run_port_attack(PortAttackConfig::default());
        assert!(
            trace.detects_victim(2.0),
            "baseline {:.1}, other {:.1}, same {:.1}",
            trace.baseline(),
            trace.other_bank_level(),
            trace.same_bank_level()
        );
    }

    #[test]
    fn noc_contention_visible_on_other_banks() {
        let trace = run_port_attack(PortAttackConfig::default());
        assert!(
            trace.other_bank_level() > trace.baseline() + 1.0,
            "victim activity anywhere must raise attacker latency"
        );
    }

    #[test]
    fn port_spike_dominates_noc_bump() {
        let trace = run_port_attack(PortAttackConfig::default());
        let noc_bump = trace.other_bank_level() - trace.baseline();
        let port_spike = trace.same_bank_level() - trace.baseline();
        assert!(port_spike > 2.0 * noc_bump);
    }

    #[test]
    fn more_victim_threads_bigger_spike() {
        let light = PortAttackConfig {
            victim_threads: 1,
            ..PortAttackConfig::default()
        };
        let heavy = PortAttackConfig::default(); // 3 threads
        let t_light = run_port_attack(light);
        let t_heavy = run_port_attack(heavy);
        assert!(t_heavy.same_bank_level() > t_light.same_bank_level());
    }

    #[test]
    fn isolated_attacker_sees_flat_timing() {
        // A victim that never touches the attacker's bank (Jumanji's bank
        // isolation) produces no port spike.
        let cfg = PortAttackConfig {
            attacker_bank: 0,
            ..PortAttackConfig::default()
        };
        // Victim "rotates" through banks 1..12 only: emulate by treating
        // bank 0's flood window as a pause — simplest is to compare levels.
        let trace = run_port_attack(cfg);
        // Drop the same-bank samples, as bank isolation would: remaining
        // variation is only the small NoC term.
        let others: Vec<f64> = trace
            .samples
            .iter()
            .filter(|s| s.victim_bank != Some(0))
            .map(|s| s.cycles_per_access)
            .collect();
        let max = others.iter().cloned().fold(0.0, f64::max);
        let min = others.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= trace.same_bank_level() - trace.baseline(),
            "without shared banks the signal collapses to NoC noise"
        );
    }
}
