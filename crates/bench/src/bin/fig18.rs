//! Fig. 18: NoC sensitivity — Jumanji's batch speedup on random mixes as
//! router delay varies from 1 to 3 cycles.

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji_bench::mix_count;

fn main() {
    let mixes = mix_count(8);
    println!("# Fig. 18: Jumanji speedup vs router delay ({mixes} mixed-LC mixes, high load)");
    println!("router_cycles\tgmean_speedup_pct");
    for router in [1u64, 2, 3] {
        let mut cfg = SystemConfig::micro2020();
        cfg.noc.router_cycles = router;
        let opts = SimOptions {
            cfg,
            ..SimOptions::default()
        };
        let mut speedups = Vec::new();
        for seed in 0..mixes as u64 {
            let exp = Experiment::new(WorkloadMix::mixed_lc(seed), LcLoad::High, opts.clone());
            let baseline = exp.run(DesignKind::Static);
            let r = exp.run(DesignKind::Jumanji);
            speedups.push(r.weighted_speedup_vs(&baseline));
        }
        println!("{router}\t{:.2}", (gmean(&speedups) - 1.0) * 100.0);
    }
    println!("# expected: speedup grows with router delay (paper: ~9% -> ~15% for 1 -> 3).");
}
