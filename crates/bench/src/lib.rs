//! Shared harness code for the figure-reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig04` … `fig18`, `table2`, `table3`) that regenerates the
//! corresponding rows/series as TSV on stdout. This library holds the
//! common machinery: design matrices over random mixes, box-plot summary
//! statistics, and output helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;

/// Number of random batch mixes per configuration in the paper (Fig. 13).
pub const PAPER_MIXES: usize = 40;

/// Reads the mix count from the command line (`--mixes N`), the
/// `JUMANJI_MIXES` env var, or defaults to `default`.
pub fn mix_count(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--mixes") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    std::env::var("JUMANJI_MIXES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Five-number summary for box-and-whisker figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum (lower whisker).
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "need at least one value");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        BoxStats {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
        }
    }

    /// TSV fields `min q1 median q3 max`.
    pub fn tsv(&self) -> String {
        format!(
            "{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Result of running one (workload group, load, design) cell of Fig. 13:
/// distributions over mixes.
#[derive(Debug, Clone)]
pub struct DesignCell {
    /// Worst LC normalized tail latency per mix.
    pub norm_tails: Vec<f64>,
    /// Batch weighted speedup vs. Static per mix.
    pub speedups: Vec<f64>,
    /// Mean vulnerability per mix.
    pub vulnerability: Vec<f64>,
    /// Energy components per mix `(l1, l2, llc, noc, mem)`.
    pub energy: Vec<(f64, f64, f64, f64, f64)>,
}

impl DesignCell {
    /// Geometric-mean speedup over mixes.
    pub fn gmean_speedup(&self) -> f64 {
        gmean(&self.speedups)
    }

    /// Mean vulnerability over mixes.
    pub fn mean_vulnerability(&self) -> f64 {
        self.vulnerability.iter().sum::<f64>() / self.vulnerability.len() as f64
    }
}

/// Workload selector for a Fig. 13 group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcGroup {
    /// Four instances of the named TailBench server.
    Same(&'static str),
    /// Four random distinct servers per mix.
    Mixed,
}

impl LcGroup {
    /// The six groups of Fig. 13, in plotting order.
    pub fn all() -> [LcGroup; 6] {
        [
            LcGroup::Same("masstree"),
            LcGroup::Same("xapian"),
            LcGroup::Same("img-dnn"),
            LcGroup::Same("silo"),
            LcGroup::Same("moses"),
            LcGroup::Mixed,
        ]
    }

    /// Display label.
    pub fn label(self) -> String {
        match self {
            LcGroup::Same(n) => n.to_string(),
            LcGroup::Mixed => "Mixed".to_string(),
        }
    }

    /// Builds the mix for seed `seed`.
    pub fn mix(self, seed: u64) -> WorkloadMix {
        match self {
            LcGroup::Same(name) => {
                let lc = tailbench()
                    .into_iter()
                    .find(|p| p.name == name)
                    .unwrap_or_else(|| panic!("unknown LC app {name}"));
                WorkloadMix::uniform_lc(&lc, seed)
            }
            LcGroup::Mixed => WorkloadMix::mixed_lc(seed),
        }
    }
}

/// Runs `design` and the Static baseline over `mixes` random mixes of one
/// workload group at one load, collecting the Fig. 13 distributions.
///
/// Baseline runs are cached across designs by the caller if needed; this
/// function runs them inline for simplicity.
pub fn run_cell(
    group: LcGroup,
    load: LcLoad,
    design: DesignKind,
    mixes: usize,
    opts: &SimOptions,
) -> DesignCell {
    let mut cell = DesignCell {
        norm_tails: Vec::with_capacity(mixes),
        speedups: Vec::with_capacity(mixes),
        vulnerability: Vec::with_capacity(mixes),
        energy: Vec::with_capacity(mixes),
    };
    for seed in 0..mixes as u64 {
        let mut opts = opts.clone();
        opts.seed ^= seed.wrapping_mul(0x9E37_79B9);
        let exp = Experiment::new(group.mix(seed), load, opts);
        let baseline = exp.run(DesignKind::Static);
        let r = exp.run(design);
        cell.norm_tails.push(r.max_norm_tail());
        cell.speedups.push(r.weighted_speedup_vs(&baseline));
        cell.vulnerability.push(r.vulnerability);
        let e = r.energy_per_instruction();
        cell.energy.push((e.l1, e.l2, e.llc, e.noc, e.mem));
    }
    cell
}

/// Runs every design (plus baseline) over mixes, returning per-design
/// cells in `designs` order — shares the Static baseline across designs.
pub fn run_matrix(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
) -> Vec<DesignCell> {
    let mut cells: Vec<DesignCell> = designs
        .iter()
        .map(|_| DesignCell {
            norm_tails: Vec::with_capacity(mixes),
            speedups: Vec::with_capacity(mixes),
            vulnerability: Vec::with_capacity(mixes),
            energy: Vec::with_capacity(mixes),
        })
        .collect();
    for seed in 0..mixes as u64 {
        let mut opts = opts.clone();
        opts.seed ^= seed.wrapping_mul(0x9E37_79B9);
        let exp = Experiment::new(group.mix(seed), load, opts);
        let baseline = exp.run(DesignKind::Static);
        for (d, design) in designs.iter().enumerate() {
            let r = if *design == DesignKind::Static {
                baseline.clone()
            } else {
                exp.run(*design)
            };
            cells[d].norm_tails.push(r.max_norm_tail());
            cells[d].speedups.push(r.weighted_speedup_vs(&baseline));
            cells[d].vulnerability.push(r.vulnerability);
            let e = r.energy_per_instruction();
            cells[d].energy.push((e.l1, e.l2, e.llc, e.noc, e.mem));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_quartiles() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn groups_enumerate_the_paper_order() {
        let labels: Vec<String> = LcGroup::all().iter().map(|g| g.label()).collect();
        assert_eq!(
            labels,
            vec!["masstree", "xapian", "img-dnn", "silo", "moses", "Mixed"]
        );
    }

    #[test]
    fn mix_count_default() {
        assert_eq!(mix_count(12), 12);
    }
}
