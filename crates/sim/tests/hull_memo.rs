//! Regression proof for the process-wide ratio-hull memo.
//!
//! `exact_ratio_hull` replaced a per-thread `thread_local!` memo with a
//! shared sharded cache. Reusing a cached hull is only sound if the cached
//! value is *bit-identical* to what recomputation would produce — the
//! engine's byte-identical-TSV guarantee rides on it — so this test drives
//! the memoized path against the uncached reference (`compute_ratio_hull`)
//! over randomized profiles and compares every point by bit pattern.

use nuca_sim::perf::Profile;
use nuca_sim::{compute_ratio_hull, exact_ratio_hull};
use nuca_workloads::curves::{Component, CurveShape};
use nuca_workloads::{BatchProfile, LcLoad, LcProfile};
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized two-component curve shape (one smooth working set, one
/// cliff) — cliffs make the raw curve non-convex, so the hull construction
/// actually has work to do.
fn shape(floor: f64, weight: f64, ws_kb: usize, sharpness: f64) -> CurveShape {
    CurveShape::new(
        floor,
        vec![
            Component::Smooth {
                weight,
                ws_bytes: (ws_kb * 1024) as u64,
                sharpness,
            },
            Component::Cliff {
                weight: weight * 0.5,
                ws_bytes: (ws_kb * 2048) as u64,
            },
        ],
    )
}

fn assert_hull_matches_uncached(p: &Profile, unit: u64, units: usize) {
    let cached = exact_ratio_hull(p, unit, units);
    let reference = compute_ratio_hull(p, unit, units);
    assert_eq!(cached.unit_bytes(), reference.unit_bytes());
    assert_eq!(cached.points().len(), reference.points().len());
    for (i, (c, r)) in cached.points().iter().zip(reference.points()).enumerate() {
        assert_eq!(
            c.to_bits(),
            r.to_bits(),
            "hull point {i} differs: cached {c} vs recomputed {r}"
        );
    }
    // A second lookup must reuse the very same allocation (shared memo).
    let again = exact_ratio_hull(p, unit, units);
    assert!(Arc::ptr_eq(&cached, &again), "memo must return shared Arc");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_hulls_bit_identical_to_recomputation(
        (floor, weight, ws_kb, sharpness, units) in (
            0.01f64..0.3,
            0.05f64..0.34,
            64usize..4096,
            1.0f64..4.0,
            8usize..64,
        ),
    ) {
        let p = Profile::Batch(BatchProfile {
            name: "prop.batch",
            llc_apki: 10.0 + weight * 40.0,
            base_cpi: 0.8 + floor,
            shape: shape(floor, weight, ws_kb, sharpness),
        });
        assert_hull_matches_uncached(&p, 32 * 1024, units);
    }

    #[test]
    fn lc_hulls_bit_identical_to_recomputation(
        (floor, weight, ws_kb, miss_stall, units) in (
            0.01f64..0.3,
            0.05f64..0.34,
            64usize..4096,
            1.0f64..4.0,
            8usize..64,
        ),
    ) {
        let p = Profile::Lc(
            LcProfile {
                name: "prop.lc",
                qps_low: 200.0,
                qps_high: 800.0,
                num_queries: 1000,
                work_cycles: 150_000.0,
                accesses_per_req: 900.0 + weight * 1000.0,
                miss_stall,
                shape: shape(floor, weight, ws_kb, 2.0),
            },
            LcLoad::High,
        );
        assert_hull_matches_uncached(&p, 32 * 1024, units);
    }
}

#[test]
fn real_profile_hulls_match_and_cache_counts_hits() {
    for p in nuca_workloads::spec2006() {
        assert_hull_matches_uncached(&Profile::Batch(p), 32 * 1024, 40);
    }
    for p in nuca_workloads::tailbench() {
        assert_hull_matches_uncached(&Profile::Lc(p, LcLoad::High), 32 * 1024, 40);
    }
    let stats = nuca_sim::ratio_hull_cache_stats();
    assert!(stats.misses > 0, "fresh hulls must be computed");
    assert!(stats.hits >= stats.misses, "repeat lookups must hit");
}
