//! The process-wide experiment-cell cache.
//!
//! The paper's evaluation is one big matrix of `(mix, load, design, seed)`
//! cells rendered eighteen different ways — fig13 and fig14 run the *same*
//! experiments and differ only in rendering, the sensitivity study's
//! default rows duplicate the main-results cells, and so on. [`CellCache`]
//! memoizes the three expensive pure computations behind a cell, shared by
//! every worker thread and every figure in the process:
//!
//! - **experiments** — constructed [`Experiment`]s (profile hulls,
//!   deadline isolation runs, stream generators), keyed by the content of
//!   `(mix, load, options)`;
//! - **runs** — completed [`ExperimentResult`]s, keyed by the experiment's
//!   content key plus the design;
//! - **allocs** — one-shot [`DesignKind::allocate`] placements, keyed by
//!   [`PlacementInput::content_key`] plus the design.
//!
//! Keys are 128-bit content fingerprints
//! ([`fingerprint128`](jumanji::types::hash::fingerprint128)) of the
//! `Debug` form of the full input, so two cells share an entry exactly
//! when the simulation would do identical work.
//!
//! **Tracing bypasses cache reads.** A traced run must emit its complete
//! per-interval event stream, so when the sink is enabled the cache
//! re-runs the experiment (writing the result through for later untraced
//! readers). Telemetry's bit-identical contract makes the written-through
//! result indistinguishable from an untraced computation.
//!
//! The escape hatch: `--no-cache` on any figure binary (or
//! `JUMANJI_NO_CACHE=1`) disables the global cache, making every lookup
//! compute fresh.

use jumanji::core::{Allocation, DesignKind, PlacementInput};
use jumanji::sim::{ratio_hull_cache_stats, Experiment, ExperimentResult, SimOptions};
use jumanji::telemetry::Telemetry;
use jumanji::types::hash::fingerprint128;
use jumanji::types::{MapStats, ShardedMap};
use jumanji::workloads::{LcLoad, WorkloadMix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The cache identity of an experiment: a 128-bit content fingerprint of
/// `(mix, load, opts)`. This is the key [`CellCache::experiment`] files
/// entries under, exposed so the suite's plan pass ([`crate::plan`]) can
/// name a cell without constructing it.
pub fn experiment_key(mix: &WorkloadMix, load: LcLoad, opts: &SimOptions) -> u128 {
    fingerprint128(format!("exp|{load:?}|{opts:?}|{mix:?}").as_bytes())
}

/// The cache identity of a completed `(experiment, design)` run cell —
/// the key [`CellCache::run`] files results under.
pub fn run_key(experiment_key: u128, design: DesignKind) -> u128 {
    fingerprint128(format!("run|{experiment_key:032x}|{design:?}").as_bytes())
}

/// A constructed experiment plus the cache identity it was filed under
/// (`None` when the cache is disabled, so downstream run lookups also
/// compute fresh).
#[derive(Debug, Clone)]
pub struct ExperimentHandle {
    exp: Arc<Experiment>,
    key: Option<u128>,
}

impl ExperimentHandle {
    /// The underlying experiment.
    pub fn experiment(&self) -> &Experiment {
        &self.exp
    }
}

/// Counter snapshot of every memo a [`CellCache`] reports on: its own
/// three maps plus the simulator's process-wide ratio-hull memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellCacheStats {
    /// Completed experiment results.
    pub runs: MapStats,
    /// Constructed experiments.
    pub experiments: MapStats,
    /// One-shot placement allocations.
    pub allocs: MapStats,
    /// The simulator's shared ratio-hull memo.
    pub hulls: MapStats,
}

/// A shared concurrent cache of experiment cells (see the module docs).
///
/// All methods are `&self` and thread-safe; the figure binaries share one
/// instance via [`CellCache::global`], while tests that need isolated
/// counters construct their own with [`CellCache::new`].
#[derive(Debug)]
pub struct CellCache {
    enabled: AtomicBool,
    experiments: ShardedMap<u128, Arc<Experiment>>,
    runs: ShardedMap<u128, Arc<ExperimentResult>>,
    allocs: ShardedMap<u128, Allocation>,
}

impl Default for CellCache {
    fn default() -> CellCache {
        CellCache::new()
    }
}

impl CellCache {
    /// An empty, enabled cache.
    pub fn new() -> CellCache {
        CellCache {
            enabled: AtomicBool::new(true),
            experiments: ShardedMap::new(),
            runs: ShardedMap::new(),
            allocs: ShardedMap::new(),
        }
    }

    /// The process-wide cache every figure and the `suite` binary share.
    ///
    /// Honours `JUMANJI_NO_CACHE` at first use: any value other than empty
    /// or `0` starts the cache disabled.
    pub fn global() -> &'static CellCache {
        static GLOBAL: OnceLock<CellCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = CellCache::new();
            if let Ok(v) = std::env::var("JUMANJI_NO_CACHE") {
                if !v.is_empty() && v != "0" {
                    cache.set_enabled(false);
                }
            }
            cache
        })
    }

    /// Whether lookups may reuse memoized results.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns memoization on or off. Disabling does not drop existing
    /// entries; it makes every lookup compute fresh.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The experiment for `(mix, load, opts)`, constructed at most once
    /// per process while the cache is enabled.
    pub fn experiment(&self, mix: WorkloadMix, load: LcLoad, opts: SimOptions) -> ExperimentHandle {
        if !self.enabled() {
            return ExperimentHandle {
                exp: Arc::new(Experiment::new(mix, load, opts)),
                key: None,
            };
        }
        let key = experiment_key(&mix, load, &opts);
        let exp = self
            .experiments
            .get_or_compute(key, || Arc::new(Experiment::new(mix, load, opts)));
        ExperimentHandle {
            exp,
            key: Some(key),
        }
    }

    /// The result of running `design` on `handle`'s experiment, computed
    /// at most once per process while the cache is enabled and `tel` is
    /// disabled.
    ///
    /// An enabled sink forces a full re-run (the event stream must be
    /// complete) whose result is written through for later untraced
    /// readers — sound because traced runs are bit-identical to untraced
    /// ones by the telemetry contract.
    pub fn run(
        &self,
        handle: &ExperimentHandle,
        design: DesignKind,
        tel: &dyn Telemetry,
    ) -> Arc<ExperimentResult> {
        let Some(base) = handle.key else {
            return Arc::new(handle.exp.run_traced(design, tel));
        };
        let key = run_key(base, design);
        if tel.enabled() {
            let result = Arc::new(handle.exp.run_traced(design, tel));
            self.runs.insert(key, Arc::clone(&result));
            return result;
        }
        let exp = Arc::clone(&handle.exp);
        self.runs
            .get_or_compute(key, move || Arc::new(exp.run(design)))
    }

    /// The allocation `design` produces for `input`, computed at most once
    /// per process per distinct input while the cache is enabled.
    pub fn allocate(&self, design: DesignKind, input: &PlacementInput) -> Allocation {
        if !self.enabled() {
            return design.allocate(input);
        }
        let key =
            fingerprint128(format!("alloc|{design:?}|{:032x}", input.content_key()).as_bytes());
        self.allocs.get_or_compute(key, || design.allocate(input))
    }

    /// A snapshot of every memo's counters (including the simulator's
    /// shared hull memo).
    pub fn stats(&self) -> CellCacheStats {
        CellCacheStats {
            runs: self.runs.stats(),
            experiments: self.experiments.stats(),
            allocs: self.allocs.stats(),
            hulls: ratio_hull_cache_stats(),
        }
    }

    /// Drops every entry and resets this cache's counters (the hull memo
    /// is owned by the simulator and is left alone).
    pub fn clear(&self) {
        self.experiments.clear();
        self.runs.clear();
        self.allocs.clear();
    }
}

/// Applies process-level cache flags from a figure binary's argument list:
/// `--no-cache` disables the global cache before any experiment runs.
pub fn apply_cache_flags(args: &[String]) {
    if wants_no_cache(args) {
        CellCache::global().set_enabled(false);
    }
}

fn wants_no_cache(args: &[String]) -> bool {
    args.iter().any(|a| a == "--no-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji::telemetry::{Event, NoopSink, RecordingSink};
    use jumanji::types::{Seconds, SystemConfig};
    use jumanji::workloads::case_study_mix;

    fn quick_opts() -> SimOptions {
        SimOptions {
            duration: Seconds(0.5),
            ..SimOptions::default()
        }
    }

    #[test]
    fn cached_run_matches_direct_run_exactly() {
        let cache = CellCache::new();
        let handle = cache.experiment(case_study_mix(3), LcLoad::High, quick_opts());
        let cached = cache.run(&handle, DesignKind::Jumanji, &NoopSink);
        let direct =
            Experiment::new(case_study_mix(3), LcLoad::High, quick_opts()).run(DesignKind::Jumanji);
        assert_eq!(format!("{cached:?}"), format!("{direct:?}"));
    }

    #[test]
    fn repeat_lookups_reuse_the_same_result() {
        let cache = CellCache::new();
        let h1 = cache.experiment(case_study_mix(1), LcLoad::Low, quick_opts());
        let h2 = cache.experiment(case_study_mix(1), LcLoad::Low, quick_opts());
        assert!(Arc::ptr_eq(&h1.exp, &h2.exp));
        let r1 = cache.run(&h1, DesignKind::Jigsaw, &NoopSink);
        let r2 = cache.run(&h2, DesignKind::Jigsaw, &NoopSink);
        assert!(Arc::ptr_eq(&r1, &r2));
        let s = cache.stats();
        assert_eq!(s.experiments.hits, 1);
        assert_eq!(s.experiments.misses, 1);
        assert_eq!(s.runs.hits, 1);
        assert_eq!(s.runs.misses, 1);
    }

    #[test]
    fn tracing_bypasses_reads_but_writes_through() {
        let cache = CellCache::new();
        let handle = cache.experiment(case_study_mix(2), LcLoad::High, quick_opts());
        // Warm the cache untraced.
        let warm = cache.run(&handle, DesignKind::Jumanji, &NoopSink);
        // A traced run must still emit the full event stream...
        let sink = RecordingSink::new();
        let traced = cache.run(&handle, DesignKind::Jumanji, &sink);
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e, Event::RunSummary { .. })),
            "traced run must emit events even on a warm cache"
        );
        // ...and its result must be bit-identical to the cached one.
        assert_eq!(format!("{traced:?}"), format!("{warm:?}"));
        // The traced result replaced the entry (write-through, counted as
        // a miss) — never served from cache.
        assert_eq!(cache.stats().runs.hits, 0);
        assert_eq!(cache.stats().runs.misses, 2);
    }

    #[test]
    fn disabled_cache_computes_fresh_and_stores_nothing() {
        let cache = CellCache::new();
        cache.set_enabled(false);
        assert!(!cache.enabled());
        let h1 = cache.experiment(case_study_mix(1), LcLoad::High, quick_opts());
        let h2 = cache.experiment(case_study_mix(1), LcLoad::High, quick_opts());
        assert!(!Arc::ptr_eq(&h1.exp, &h2.exp));
        let r1 = cache.run(&h1, DesignKind::Jumanji, &NoopSink);
        let r2 = cache.run(&h2, DesignKind::Jumanji, &NoopSink);
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        let s = cache.stats();
        assert_eq!(s.experiments.entries, 0);
        assert_eq!(s.runs.entries, 0);
    }

    #[test]
    fn allocations_are_memoized_by_content() {
        let cache = CellCache::new();
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let a = cache.allocate(DesignKind::Jumanji, &input);
        let b = cache.allocate(DesignKind::Jumanji, &input.clone());
        assert_eq!(a, b);
        let direct = DesignKind::Jumanji.allocate(&input);
        assert_eq!(a, direct);
        let s = cache.stats();
        assert_eq!((s.allocs.hits, s.allocs.misses), (1, 1));
        // A different design is a different cell.
        let _ = cache.allocate(DesignKind::Jigsaw, &input);
        assert_eq!(cache.stats().allocs.entries, 2);
    }

    #[test]
    fn no_cache_flag_is_recognised() {
        // Parsing only: the global cache is shared with other tests, so
        // this avoids flipping it.
        let plain: Vec<String> = vec!["--mixes".into(), "2".into()];
        assert!(!wants_no_cache(&plain));
        let flagged: Vec<String> = vec!["--mixes".into(), "2".into(), "--no-cache".into()];
        assert!(wants_no_cache(&flagged));
    }
}
