//! A hermetic micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use.
//!
//! Exists so `cargo bench` (and `cargo build --benches`) works with
//! `--offline` on machines with no crates.io mirror. It keeps criterion's
//! interface — `criterion_group!`/`criterion_main!`, benchmark groups,
//! throughput annotations, [`black_box`] — and reports a simple
//! mean-per-iteration timing to stdout instead of criterion's full
//! statistical pipeline and HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A bench harness measures wall-clock by definition, and the
// JUMANJI_BENCH_SMOKE switch is its own self-contained knob; both carry
// lint.toml allowances — mirrored here for clippy.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Iteration cap so pathological benches still terminate promptly.
const MAX_ITERS: u64 = 1_000_000;

/// True when `JUMANJI_BENCH_SMOKE=1`: each bench runs exactly one timed
/// iteration. CI uses this to prove every bench still compiles and runs
/// without paying full measurement time; the reported numbers are noise.
fn smoke_mode() -> bool {
    std::env::var("JUMANJI_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement target is
    /// reached, and records the mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and single-shot estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        if smoke_mode() {
            self.last_mean_ns = once.as_nanos() as f64;
            return;
        }
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        let mut line = format!("{}/{id}: {:.1} ns/iter", self.name, b.last_mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) if b.last_mean_ns > 0.0 => {
                let per_sec = n as f64 / (b.last_mean_ns * 1e-9);
                line.push_str(&format!(" ({per_sec:.3e} elem/s)"));
            }
            Some(Throughput::Bytes(n)) if b.last_mean_ns > 0.0 => {
                let per_sec = n as f64 / (b.last_mean_ns * 1e-9);
                line.push_str(&format!(" ({per_sec:.3e} B/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{id}: {:.1} ns/iter", b.last_mean_ns);
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut b = Bencher::default();
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(b.last_mean_ns > 0.0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(2 + 2));
        });
        group.finish();
        assert!(ran);
    }

    criterion_group!(test_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }

    #[test]
    fn smoke_mode_runs_a_single_iteration() {
        std::env::set_var("JUMANJI_BENCH_SMOKE", "1");
        let mut calls = 0u64;
        let mut b = Bencher::default();
        b.iter(|| {
            calls += 1;
            black_box(calls)
        });
        std::env::remove_var("JUMANJI_BENCH_SMOKE");
        assert_eq!(calls, 1);
        assert!(b.last_mean_ns > 0.0);
    }
}
