//! End-to-end integration tests: the paper's headline claims must hold on
//! full simulated experiments spanning every crate in the workspace.

use jumanji::prelude::*;
use jumanji::telemetry::NoopSink;
use jumanji::types::Seconds;

fn opts() -> SimOptions {
    SimOptions {
        duration: Seconds(2.0),
        ..SimOptions::default()
    }
}

/// Margin over the isolation-measured deadline allowed for contention and
/// p95 sampling noise.
const TAIL_SLACK: f64 = 1.35;

#[test]
fn tail_aware_designs_meet_deadlines_jigsaw_does_not() {
    let exp = Experiment::new(case_study_mix(0), LcLoad::High, opts());
    for design in [
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jumanji,
    ] {
        let r = exp.run(design, &NoopSink);
        assert!(
            r.max_norm_tail() < TAIL_SLACK,
            "{design} violated: {:?}",
            r.norm_tails()
        );
    }
    let jigsaw = exp.run(DesignKind::Jigsaw, &NoopSink);
    assert!(
        jigsaw.max_norm_tail() > TAIL_SLACK,
        "jigsaw must violate: {:?}",
        jigsaw.norm_tails()
    );
    // How badly Jigsaw violates depends on how cache-hungry the drawn
    // batch co-runners are; mix 4 draws an aggressive mix where the
    // violation is massive (the paper reports up to 100x).
    let aggressive = Experiment::new(case_study_mix(4), LcLoad::High, opts());
    let jigsaw = aggressive.run(DesignKind::Jigsaw, &NoopSink);
    assert!(
        jigsaw.max_norm_tail() > 2.0,
        "jigsaw must violate massively on an aggressive mix: {:?}",
        jigsaw.norm_tails()
    );
}

#[test]
fn speedup_ordering_matches_the_paper() {
    // Jigsaw >= Jumanji >> Adaptive ~ Static; D-NUCAs clearly positive.
    let exp = Experiment::new(case_study_mix(1), LcLoad::High, opts());
    let stat = exp.run(DesignKind::Static, &NoopSink);
    let speedup = |d: DesignKind| exp.run(d, &NoopSink).weighted_speedup_vs(&stat);
    let adaptive = speedup(DesignKind::Adaptive);
    let jigsaw = speedup(DesignKind::Jigsaw);
    let jumanji = speedup(DesignKind::Jumanji);
    assert!(jumanji > 1.05, "jumanji speedup {jumanji}");
    assert!(jigsaw > jumanji, "jigsaw {jigsaw} vs jumanji {jumanji}");
    assert!(
        jumanji > adaptive + 0.04,
        "jumanji {jumanji} vs adaptive {adaptive}"
    );
    assert!(adaptive < 1.06, "adaptive barely improves: {adaptive}");
}

#[test]
fn jumanji_is_near_insecure_and_ideal_batch() {
    // Fig. 16: bank isolation costs little; greedy placement is near-ideal.
    let exp = Experiment::new(case_study_mix(2), LcLoad::High, opts());
    let stat = exp.run(DesignKind::Static, &NoopSink);
    let jumanji = exp
        .run(DesignKind::Jumanji, &NoopSink)
        .weighted_speedup_vs(&stat);
    let insecure = exp
        .run(DesignKind::JumanjiInsecure, &NoopSink)
        .weighted_speedup_vs(&stat);
    let ideal = exp
        .run(DesignKind::JumanjiIdealBatch, &NoopSink)
        .weighted_speedup_vs(&stat);
    assert!(
        insecure - jumanji < 0.03,
        "isolation cost: {insecure} vs {jumanji}"
    );
    assert!(ideal - jumanji < 0.04, "ideality gap: {ideal} vs {jumanji}");
}

#[test]
fn vulnerability_matches_fig14() {
    let exp = Experiment::new(case_study_mix(3), LcLoad::High, opts());
    let adaptive = exp.run(DesignKind::Adaptive, &NoopSink);
    let vmpart = exp.run(DesignKind::VmPart, &NoopSink);
    let jigsaw = exp.run(DesignKind::Jigsaw, &NoopSink);
    let jumanji = exp.run(DesignKind::Jumanji, &NoopSink);
    assert!((adaptive.vulnerability - 15.0).abs() < 0.2);
    assert!((vmpart.vulnerability - 15.0).abs() < 0.2);
    assert!(jigsaw.vulnerability > 0.0 && jigsaw.vulnerability < 5.0);
    assert_eq!(jumanji.vulnerability, 0.0);
}

#[test]
fn energy_dnuca_saves_vs_static() {
    // Fig. 15 shape: D-NUCAs clearly below Static; VM-Part does not save.
    let exp = Experiment::new(case_study_mix(4), LcLoad::High, opts());
    let stat = exp
        .run(DesignKind::Static, &NoopSink)
        .energy_per_instruction()
        .total();
    let jumanji = exp
        .run(DesignKind::Jumanji, &NoopSink)
        .energy_per_instruction()
        .total();
    let jigsaw = exp
        .run(DesignKind::Jigsaw, &NoopSink)
        .energy_per_instruction()
        .total();
    let vmpart = exp
        .run(DesignKind::VmPart, &NoopSink)
        .energy_per_instruction()
        .total();
    assert!(jumanji < 0.97 * stat, "jumanji {jumanji} vs static {stat}");
    assert!(jigsaw < 0.97 * stat, "jigsaw {jigsaw} vs static {stat}");
    assert!(
        vmpart > 0.97 * stat,
        "vm-part saves little: {vmpart} vs {stat}"
    );
}

#[test]
fn low_load_keeps_deadlines_for_tail_aware_designs() {
    let exp = Experiment::new(case_study_mix(5), LcLoad::Low, opts());
    for design in [DesignKind::Adaptive, DesignKind::Jumanji] {
        let r = exp.run(design, &NoopSink);
        assert!(
            r.max_norm_tail() < TAIL_SLACK,
            "{design} at low load: {:?}",
            r.norm_tails()
        );
    }
}

#[test]
fn mixed_lc_experiment_works_end_to_end() {
    let exp = Experiment::new(WorkloadMix::mixed_lc(7), LcLoad::High, opts());
    let stat = exp.run(DesignKind::Static, &NoopSink);
    let r = exp.run(DesignKind::Jumanji, &NoopSink);
    assert_eq!(r.lc_names.len(), 4);
    assert!(r.max_norm_tail() < TAIL_SLACK, "{:?}", r.norm_tails());
    assert!(r.weighted_speedup_vs(&stat) > 1.03);
    assert_eq!(r.vulnerability, 0.0);
}

#[test]
fn twelve_vm_grouping_runs_and_isolates() {
    // The most fragmented Fig. 17 configuration.
    let spec = fig17_configs().last().expect("configs exist").1.clone();
    let mix = WorkloadMix::from_spec(&spec, &tailbench()[..4], 9);
    let exp = Experiment::new(mix, LcLoad::High, opts());
    let r = exp.run(DesignKind::Jumanji, &NoopSink);
    assert_eq!(r.vulnerability, 0.0, "12 VMs still bank-isolated");
    assert!(r.max_norm_tail() < 2.0, "{:?}", r.norm_tails());
}

#[test]
fn experiments_are_deterministic() {
    let run = || {
        let exp = Experiment::new(case_study_mix(6), LcLoad::High, opts());
        let r = exp.run(DesignKind::Jumanji, &NoopSink);
        (r.lc_tail_latency_ms.clone(), r.batch_work.clone())
    };
    assert_eq!(run(), run());
}
