//! The output of a placement algorithm: who gets how much space, where.

// Every HashSet in this module is Mix64Build-hashed, and occupant sets
// are sorted before they escape; clippy's type ban cannot see hasher
// parameters — jumanji-lint checks them precisely.
#![allow(clippy::disallowed_types)]

use crate::model::PlacementInput;
use nuca_types::hash::Mix64Build;
use nuca_types::{AppId, BankId, ConfigError, SystemConfig};
use std::collections::HashSet;

/// One application's LLC allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAlloc {
    /// The application.
    pub app: AppId,
    /// Bytes reserved for this app in each bank (partitioned space).
    /// Empty when the app lives in a shared pool instead.
    pub placement: Vec<(BankId, f64)>,
    /// Index into [`Allocation::pools`] if the app shares an unpartitioned
    /// pool (S-NUCA designs leave batch data unpartitioned).
    pub pool: Option<usize>,
    /// Which LLC copy the placement lives in. Always 0 except for batch
    /// applications under the infeasible Ideal-Batch design, whose batch
    /// data lives in copy 1 (Sec. VIII-C).
    pub copy: u8,
}

impl AppAlloc {
    /// Total bytes of partitioned space (0 for pooled apps).
    pub fn total_bytes(&self) -> f64 {
        self.placement.iter().map(|(_, b)| b).sum()
    }

    /// Average ways-per-bank of the partition, for the associativity
    /// penalty model: bytes in a bank divided by way size, averaged over
    /// banks weighted by bytes.
    pub fn avg_ways(&self, cfg: &SystemConfig) -> f64 {
        let way = cfg.llc.way_bytes() as f64;
        let total = self.total_bytes();
        if total <= 0.0 {
            return 0.0;
        }
        self.placement
            .iter()
            .map(|(_, b)| (b / way) * (b / total))
            .sum()
    }
}

/// A shared, unpartitioned pool of LLC space (e.g., the batch region of
/// Static/Adaptive). Members compete for occupancy; the simulator resolves
/// the equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Pool {
    /// Apps sharing the pool.
    pub members: Vec<AppId>,
    /// Bytes of pool space in each bank.
    pub placement: Vec<(BankId, f64)>,
}

impl Pool {
    /// Total pool bytes.
    pub fn total_bytes(&self) -> f64 {
        self.placement.iter().map(|(_, b)| b).sum()
    }

    /// Ways-per-bank of the pool (for the associativity model).
    pub fn avg_ways(&self, cfg: &SystemConfig) -> f64 {
        let way = cfg.llc.way_bytes() as f64;
        let total = self.total_bytes();
        if total <= 0.0 {
            return 0.0;
        }
        self.placement
            .iter()
            .map(|(_, b)| (b / way) * (b / total))
            .sum()
    }
}

/// A complete LLC allocation for one reconfiguration interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-app allocations, indexed by `AppId`.
    pub apps: Vec<AppAlloc>,
    /// Shared pools referenced by [`AppAlloc::pool`].
    pub pools: Vec<Pool>,
    /// True for the infeasible Ideal-Batch design, whose batch placement
    /// lives in a *copy* of the LLC: per-bank capacity checks are skipped
    /// across the batch/LC boundary (Sec. VIII-C).
    pub ideal_batch: bool,
}

impl Allocation {
    /// The allocation of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    pub fn of(&self, app: AppId) -> &AppAlloc {
        &self.apps[app.index()]
    }

    /// Effective placement of `app`: its own partition, or its pool's.
    pub fn placement_of(&self, app: AppId) -> &[(BankId, f64)] {
        let a = self.of(app);
        match a.pool {
            Some(p) => &self.pools[p].placement,
            None => &a.placement,
        }
    }

    /// All apps occupying any space in `bank` (partitioned or pooled).
    pub fn occupants(&self, bank: BankId) -> Vec<AppId> {
        let mut out: HashSet<AppId, Mix64Build> = HashSet::default();
        for a in &self.apps {
            if a.placement
                .iter()
                .any(|(b, bytes)| *b == bank && *bytes > 0.0)
            {
                out.insert(a.app);
            }
        }
        for p in &self.pools {
            if p.placement
                .iter()
                .any(|(b, bytes)| *b == bank && *bytes > 0.0)
            {
                out.extend(p.members.iter().copied());
            }
        }
        let mut v: Vec<AppId> = out.into_iter().collect();
        v.sort();
        v
    }

    /// [`Allocation::occupants`] for every bank at once, in one pass over
    /// the allocation instead of one scan per bank. Metrics that need
    /// occupancy for many (app, bank) pairs — the per-interval
    /// vulnerability sum visits every bank of every app's placement — use
    /// this to avoid quadratic rescanning.
    pub fn occupants_by_bank(&self, num_banks: usize) -> Vec<Vec<AppId>> {
        let mut sets: Vec<HashSet<AppId, Mix64Build>> = vec![HashSet::default(); num_banks];
        for a in &self.apps {
            for &(b, bytes) in &a.placement {
                if bytes > 0.0 && b.index() < num_banks {
                    sets[b.index()].insert(a.app);
                }
            }
        }
        for p in &self.pools {
            for &(b, bytes) in &p.placement {
                if bytes > 0.0 && b.index() < num_banks {
                    sets[b.index()].extend(p.members.iter().copied());
                }
            }
        }
        sets.into_iter()
            .map(|s| {
                let mut v: Vec<AppId> = s.into_iter().collect();
                v.sort();
                v
            })
            .collect()
    }

    /// Average hop distance from `app`'s core to its data, weighting banks
    /// by allocated bytes.
    pub fn avg_distance(&self, input: &PlacementInput, app: AppId) -> f64 {
        let mesh = input.cfg.mesh();
        let core = input.apps[app.index()].core;
        mesh.weighted_distance(core, self.placement_of(app).iter().map(|&(b, w)| (b, w)))
    }

    /// True if no two apps from different VMs occupy the same bank —
    /// Jumanji's security guarantee.
    pub fn vm_isolated(&self, input: &PlacementInput) -> bool {
        for bank in input.banks() {
            let occ = self.occupants(bank);
            let vms: HashSet<_, Mix64Build> =
                occ.iter().map(|a| input.apps[a.index()].vm).collect();
            if vms.len() > 1 {
                return false;
            }
        }
        true
    }

    /// Average number of potential attackers per bank for `app`: apps from
    /// *other* VMs occupying the banks holding `app`'s data, weighted by
    /// `app`'s per-bank capacity share (a capacity-weighted proxy for the
    /// per-access metric of Sec. VII; the simulator weights by accesses).
    pub fn attackers(&self, input: &PlacementInput, app: AppId) -> f64 {
        let my_vm = input.apps[app.index()].vm;
        let placement = self.placement_of(app);
        let total: f64 = placement.iter().map(|(_, b)| b).sum();
        if total <= 0.0 {
            return 0.0;
        }
        placement
            .iter()
            .map(|&(bank, bytes)| {
                let n = self
                    .occupants(bank)
                    .iter()
                    .filter(|a| input.apps[a.index()].vm != my_vm)
                    .count() as f64;
                n * bytes / total
            })
            .sum()
    }

    /// Checks per-bank capacity conservation and non-negativity.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first over-committed bank or negative
    /// allocation. The Ideal-Batch design only checks batch and LC space
    /// separately (its batch space lives in a copy of the LLC).
    pub fn validate(&self, cfg: &SystemConfig) -> Result<(), ConfigError> {
        let nbanks = cfg.llc.num_banks;
        let cap = cfg.llc.bank_bytes as f64;
        let mut used = vec![0.0f64; nbanks];
        let add = |placement: &[(BankId, f64)], used: &mut Vec<f64>| -> Result<(), ConfigError> {
            for &(b, bytes) in placement {
                if bytes < -1e-6 {
                    return Err(ConfigError::new(format!(
                        "negative allocation of {bytes} bytes in {b}"
                    )));
                }
                if b.index() >= nbanks {
                    return Err(ConfigError::new(format!("allocation names invalid {b}")));
                }
                used[b.index()] += bytes;
            }
            Ok(())
        };
        if self.ideal_batch {
            // LC space (copy 0) and batch space (copy 1) are in separate
            // LLC copies; check each side independently (total capacity is
            // bounded by the design itself).
            let mut batch_used = vec![0.0f64; nbanks];
            for a in &self.apps {
                if a.copy == 0 {
                    add(&a.placement, &mut used)?;
                } else {
                    add(&a.placement, &mut batch_used)?;
                }
            }
            for p in &self.pools {
                add(&p.placement, &mut batch_used)?;
            }
            for (i, (&u, &bu)) in used.iter().zip(batch_used.iter()).enumerate() {
                if u > cap * (1.0 + 1e-6) || bu > cap * (1.0 + 1e-6) {
                    return Err(ConfigError::new(format!(
                        "bank {i} over-committed ({u} / {bu} of {cap} bytes)"
                    )));
                }
            }
            return Ok(());
        }
        for a in &self.apps {
            add(&a.placement, &mut used)?;
        }
        for p in &self.pools {
            add(&p.placement, &mut used)?;
        }
        for (i, &u) in used.iter().enumerate() {
            if u > cap * (1.0 + 1e-6) {
                return Err(ConfigError::new(format!(
                    "bank {i} over-committed ({u} of {cap} bytes)"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_types::SystemConfig;

    fn cfg() -> SystemConfig {
        SystemConfig::micro2020()
    }

    fn simple_alloc() -> Allocation {
        Allocation {
            apps: vec![
                AppAlloc {
                    app: AppId(0),
                    placement: vec![(BankId(0), 512.0 * 1024.0), (BankId(1), 512.0 * 1024.0)],
                    pool: None,
                    copy: 0,
                },
                AppAlloc {
                    app: AppId(1),
                    placement: vec![],
                    pool: Some(0),
                    copy: 0,
                },
            ],
            pools: vec![Pool {
                members: vec![AppId(1)],
                placement: vec![(BankId(2), 1024.0 * 1024.0)],
            }],
            ideal_batch: false,
        }
    }

    #[test]
    fn totals_and_ways() {
        let a = simple_alloc();
        assert_eq!(a.of(AppId(0)).total_bytes(), 1024.0 * 1024.0);
        // 512 KB in a bank = 16 ways.
        assert!((a.of(AppId(0)).avg_ways(&cfg()) - 16.0).abs() < 1e-9);
        assert_eq!(a.pools[0].total_bytes(), 1024.0 * 1024.0);
        assert!((a.pools[0].avg_ways(&cfg()) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn placement_of_resolves_pools() {
        let a = simple_alloc();
        assert_eq!(a.placement_of(AppId(1)), &a.pools[0].placement[..]);
        assert_eq!(a.placement_of(AppId(0)).len(), 2);
    }

    #[test]
    fn occupants_include_pool_members() {
        let a = simple_alloc();
        assert_eq!(a.occupants(BankId(0)), vec![AppId(0)]);
        assert_eq!(a.occupants(BankId(2)), vec![AppId(1)]);
        assert!(a.occupants(BankId(5)).is_empty());
    }

    #[test]
    fn validate_catches_overcommit() {
        let mut a = simple_alloc();
        a.validate(&cfg()).unwrap();
        a.apps[0].placement[0].1 = 2.0 * 1024.0 * 1024.0;
        assert!(a.validate(&cfg()).is_err());
    }

    #[test]
    fn validate_catches_negative_and_bad_bank() {
        let mut a = simple_alloc();
        a.apps[0].placement[0].1 = -5.0;
        assert!(a.validate(&cfg()).is_err());
        let mut b = simple_alloc();
        b.apps[0].placement[0].0 = BankId(99);
        assert!(b.validate(&cfg()).is_err());
    }
}
