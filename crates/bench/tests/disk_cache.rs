//! Integration tests for the disk-backed cell store, driven through the
//! [`CellCache`] exactly as the figure binaries drive it.
//!
//! The contract under test: whatever happens to the cache files —
//! truncation, bit flips, a different format version, two processes
//! racing to write the same cell — a reader either gets the cached
//! result byte-identical to a fresh computation, or silently recomputes
//! it. Never a panic, never a wrong answer.

use jumanji::core::{AppKind, DesignKind, PlacementInput};
use jumanji::prelude::*;
use jumanji::sim::detail::{DetailAppStats, DetailOptions, DetailReport};
use jumanji::sim::perf::Profile;
use jumanji::sim::SimOptions;
use jumanji::telemetry::NoopSink;
use jumanji::types::{AppId, CoreId, Seconds, VmId};
use jumanji::workloads::case_study_mix;
use jumanji_bench::cell_cache::{detail_key, experiment_key, run_key, CellCache, RunSource};
use jumanji_bench::DiskCache;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn quick_opts() -> SimOptions {
    SimOptions {
        duration: Seconds(0.4),
        ..SimOptions::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jumanji-disk-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh in-memory cache backed by the store at `dir` — the moral
/// equivalent of a new process pointed at `--cache-dir dir`.
fn cache_with(dir: &Path) -> CellCache {
    let cache = CellCache::new();
    cache.attach_disk(Arc::new(DiskCache::open(dir).expect("open store")));
    cache
}

/// Runs the one cell every test here uses and reports where the result
/// came from.
fn run_cell(cache: &CellCache) -> (String, RunSource) {
    let handle = cache.experiment(case_study_mix(7), LcLoad::High, quick_opts());
    let (result, source) = cache.run_sourced(&handle, DesignKind::Jumanji, &NoopSink);
    (format!("{result:?}"), source)
}

/// The on-disk path of that cell's run entry.
fn run_file(dir: &Path) -> PathBuf {
    let key = run_key(
        experiment_key(&case_study_mix(7), LcLoad::High, &quick_opts()),
        DesignKind::Jumanji,
    );
    dir.join("runs").join(format!("{key:032x}.bin"))
}

/// Asserts that a reader over the damaged store recomputes the cell
/// with output identical to `reference`, drops the corrupt file, and
/// leaves the store warm again for the next reader.
fn assert_recovers(dir: &Path, reference: &str, what: &str) {
    let cache = cache_with(dir);
    let (out, source) = run_cell(&cache);
    assert_eq!(source, RunSource::Computed, "{what}: must fall back");
    assert_eq!(out, reference, "{what}: recomputed output must match");
    let disk = cache.stats().disk.expect("disk attached");
    assert_eq!(disk.corrupt_dropped, 1, "{what}: corrupt entry dropped");
    assert!(disk.writes >= 1, "{what}: recomputed cell rewritten");

    // The rewrite healed the store: the next reader is warm.
    let (out, source) = run_cell(&cache_with(dir));
    assert_eq!(source, RunSource::Disk, "{what}: store must heal");
    assert_eq!(out, reference);
}

#[test]
fn corrupt_entries_recompute_identically() {
    let dir = temp_dir("corrupt");
    let (reference, source) = run_cell(&cache_with(&dir));
    assert_eq!(source, RunSource::Computed);
    let file = run_file(&dir);
    let pristine = std::fs::read(&file).expect("cold run wrote the entry");

    // Truncated entry (interrupted write without the atomic rename).
    std::fs::write(&file, &pristine[..pristine.len() / 2]).expect("truncate");
    assert_recovers(&dir, &reference, "truncated");

    // Bit flip in the payload: the envelope checksum catches it.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&file, &flipped).expect("flip");
    assert_recovers(&dir, &reference, "bad checksum");

    // An entry from a different format version (bytes 4..6 of the
    // envelope hold the little-endian version).
    let mut other_version = pristine.clone();
    other_version[4] ^= 0xFF;
    std::fs::write(&file, &other_version).expect("reversion");
    assert_recovers(&dir, &reference, "wrong version");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The one detailed cell the detail-recovery test uses: the paper's
/// example placement under Jumanji, shortened to a few thousand
/// accesses.
fn detail_inputs() -> (
    DetailOptions,
    Vec<Profile>,
    Vec<CoreId>,
    Vec<VmId>,
    Allocation,
) {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let lc = tailbench();
    let batch = spec2006();
    let profiles: Vec<Profile> = input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        })
        .collect();
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let alloc = DesignKind::Jumanji.allocate(&input);
    let opts = DetailOptions {
        cfg,
        accesses_per_app: 2_000,
        ..DetailOptions::default()
    };
    (opts, profiles, cores, vms, alloc)
}

/// Runs that detailed cell through the cache and reports where the
/// report came from. Debug formatting prints floats shortest-roundtrip,
/// so equal strings imply bit-equal reports.
fn run_detail_cell(cache: &CellCache) -> (String, RunSource) {
    let (opts, profiles, cores, vms, alloc) = detail_inputs();
    let (report, source) =
        cache.run_detail_sourced(&opts, &profiles, &cores, &vms, &alloc, &NoopSink);
    (format!("{report:?}"), source)
}

/// The on-disk path of that cell's entry in the `details/` namespace.
fn detail_file(dir: &Path) -> PathBuf {
    let (opts, profiles, cores, vms, alloc) = detail_inputs();
    let key = detail_key(&opts, &profiles, &cores, &vms, &alloc);
    dir.join("details").join(format!("{key:032x}.bin"))
}

/// [`assert_recovers`], for the detailed-simulator namespace.
fn assert_detail_recovers(dir: &Path, reference: &str, what: &str) {
    let cache = cache_with(dir);
    let (out, source) = run_detail_cell(&cache);
    assert_eq!(source, RunSource::Computed, "{what}: must fall back");
    assert_eq!(out, reference, "{what}: recomputed report must match");
    let disk = cache.stats().disk.expect("disk attached");
    assert_eq!(disk.corrupt_dropped, 1, "{what}: corrupt entry dropped");
    assert!(disk.writes >= 1, "{what}: recomputed cell rewritten");

    let (out, source) = run_detail_cell(&cache_with(dir));
    assert_eq!(source, RunSource::Disk, "{what}: store must heal");
    assert_eq!(out, reference);
}

#[test]
fn corrupt_detail_entries_recompute_identically() {
    let dir = temp_dir("detail-corrupt");
    let (reference, source) = run_detail_cell(&cache_with(&dir));
    assert_eq!(source, RunSource::Computed);
    let file = detail_file(&dir);
    let pristine = std::fs::read(&file).expect("cold run wrote the entry");

    // Truncated entry (interrupted write without the atomic rename).
    std::fs::write(&file, &pristine[..pristine.len() / 2]).expect("truncate");
    assert_detail_recovers(&dir, &reference, "truncated");

    // Bit flip in the payload: the envelope checksum catches it.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&file, &flipped).expect("flip");
    assert_detail_recovers(&dir, &reference, "bad checksum");

    // An entry from a different format version (bytes 4..6 of the
    // envelope hold the little-endian version).
    let mut other_version = pristine.clone();
    other_version[4] ^= 0xFF;
    std::fs::write(&file, &other_version).expect("reversion");
    assert_detail_recovers(&dir, &reference, "wrong version");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Strategy for one app's counters: wide-range u64s, finite
/// non-negative float sums (the decoder rejects non-finite totals by
/// design).
fn app_stats() -> impl Strategy<Value = DetailAppStats> {
    (
        (0u64..u64::MAX, 0u64..u64::MAX, 0.0f64..1e18, 0.0f64..1e18),
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    )
        .prop_map(
            |(
                (accesses, misses, total_latency, total_hops),
                (port_wait, tlb_misses, writebacks),
            )| {
                DetailAppStats {
                    accesses,
                    misses,
                    total_latency,
                    total_hops,
                    port_wait,
                    tlb_misses,
                    writebacks,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any well-formed report — any counter values, any occupant sets
    /// over the report's own apps — survives the store bit-exactly.
    #[test]
    fn detail_reports_round_trip_bit_exactly(
        apps in proptest::collection::vec(app_stats(), 1..6),
        bank_seed in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 0..4), 0..8),
        key_hi in 0u64..u64::MAX,
        key_lo in 0u64..u64::MAX,
    ) {
        let key = ((key_hi as u128) << 64) | key_lo as u128;
        let napps = apps.len();
        let report = DetailReport {
            bank_occupants: bank_seed
                .iter()
                .map(|occ| occ.iter().map(|&a| AppId(a % napps)).collect())
                .collect(),
            apps,
        };
        let dir = temp_dir("detail-prop");
        let disk = DiskCache::open(&dir).expect("open store");
        disk.store_detail(key, &report);
        let loaded = disk.load_detail(key).expect("entry readable");
        prop_assert_eq!(format!("{:?}", loaded), format!("{:?}", report));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn concurrent_writers_never_leave_torn_cells() {
    let dir = temp_dir("race");
    // Two independent caches (own memory, own store handle — the moral
    // equivalent of two processes) compute and persist the same cell
    // concurrently.
    let results: Vec<String> = std::thread::scope(|scope| {
        let dir = &dir;
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let (out, _) = run_cell(&cache_with(dir));
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("writer thread"))
            .collect()
    });
    assert_eq!(results[0], results[1], "racing writers must agree");

    // Whoever won the rename, the surviving entry is valid and
    // byte-identical to both computations.
    let cache = cache_with(&dir);
    let (out, source) = run_cell(&cache);
    assert_eq!(source, RunSource::Disk, "store must be warm after the race");
    assert_eq!(out, results[0]);
    assert_eq!(
        cache.stats().disk.expect("disk attached").corrupt_dropped,
        0
    );
    let _ = std::fs::remove_dir_all(&dir);
}
