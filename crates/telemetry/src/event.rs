//! Typed telemetry events and their JSONL encoding.
//!
//! Every event renders to exactly one line of JSON (no trailing newline)
//! via [`Event::to_json`]. The encoding is hand-rolled — the workspace
//! builds offline with no serialization crates — and deliberately small:
//! string values are escaped per RFC 8259, floats use Rust's
//! shortest-roundtrip formatting, and non-finite floats become `null`.

use std::fmt::Write as _;

/// One telemetry event.
///
/// Field units are baked into the names (`_ms`, `_bytes`, `_us`,
/// `_cycles`); counters are totals for the scope the event describes (one
/// interval, one bank, one job).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Per-interval feedback-controller state for one latency-critical
    /// app: the allocation the controller asked for, the tail it measured
    /// against its target band, and how many completions violated the
    /// deadline this interval.
    Controller {
        /// Reconfiguration interval index (0-based).
        interval: u64,
        /// Interval end time in simulated milliseconds.
        t_ms: f64,
        /// App id (index into the experiment's app vector).
        app: usize,
        /// LC app name.
        name: &'static str,
        /// LLC bytes the controller's allocation resolved to.
        alloc_bytes: f64,
        /// p95 latency of this interval's completions, in ms
        /// (`None` when no request completed).
        tail_ms: Option<f64>,
        /// Lower edge of the controller's target band, in ms.
        target_low_ms: f64,
        /// Upper edge of the controller's target band, in ms.
        target_high_ms: f64,
        /// The app's deadline, in ms.
        deadline_ms: f64,
        /// Requests completed this interval.
        completions: u64,
        /// Completions whose latency exceeded the deadline.
        violations: u64,
        /// Cumulative panic boosts the controller has fired so far.
        panics: u64,
    },
    /// Per-interval placement/allocation decision of the design under
    /// test, including whether the interval was served from the
    /// fixed-point memo instead of re-running the allocator.
    Allocation {
        /// Reconfiguration interval index (0-based).
        interval: u64,
        /// Design that produced the allocation.
        design: &'static str,
        /// True when the interval reused the previous allocation
        /// verbatim (memoized fixed point).
        memo_hit: bool,
        /// Controller-assigned LC sizes, in app order (0 for batch).
        lc_bytes: Vec<f64>,
        /// Effective capacity per app after evaluation, in app order.
        capacity_bytes: Vec<f64>,
        /// Lines refetched because this reconfiguration moved them.
        coherence_lines: f64,
        /// Access-weighted vulnerability of the installed allocation.
        vulnerability: f64,
    },
    /// End-of-run aggregates of one `Experiment::run`.
    RunSummary {
        /// Design that ran.
        design: &'static str,
        /// Number of reconfiguration intervals simulated.
        intervals: u64,
        /// Intervals served from the allocator memo.
        memo_hits: u64,
        /// Intervals that re-ran allocate → evaluate.
        memo_misses: u64,
    },
    /// One job's timing span on the experiment engine's worker pool.
    WorkerSpan {
        /// Worker index within the pool.
        worker: usize,
        /// Job index (the `parallel_map` element).
        job: usize,
        /// Job start, µs since the fan-out began.
        start_us: u64,
        /// Job duration in µs.
        dur_us: u64,
    },
    /// Hit/miss/entry counters of one shared computation cache, emitted
    /// when a suite or figure run finishes so traces record how much work
    /// deduplication saved.
    CacheStats {
        /// Which cache the counters describe (`"runs"`, `"details"` —
        /// the detailed-simulator cells — `"experiments"`, `"allocs"`,
        /// `"hulls"`).
        scope: &'static str,
        /// Lookups served from an already-computed entry.
        hits: u64,
        /// Lookups that computed (or stored) a fresh entry.
        misses: u64,
        /// Entries resident at snapshot time.
        entries: u64,
    },
    /// Counter totals of the persistent disk-backed cell store, emitted
    /// once when a figure or suite run finishes with `--cache-dir`
    /// attached, so traces record how much the warm start saved.
    DiskCacheStats {
        /// Entries served from disk.
        hits: u64,
        /// Lookups that found no (valid) entry on disk.
        misses: u64,
        /// Entries successfully written.
        writes: u64,
        /// Cache files deleted (corruption drops plus size-cap
        /// evictions).
        evictions: u64,
        /// Entries dropped for failing envelope or payload validation.
        corrupt_dropped: u64,
    },
    /// Per-bank contention counters from one detailed-simulator run.
    DetailBank {
        /// Bank index.
        bank: usize,
        /// Accesses routed to this bank.
        accesses: u64,
        /// Misses in this bank.
        misses: u64,
        /// Accesses that found every port busy and had to wait.
        port_conflicts: u64,
        /// Total cycles spent waiting on this bank's ports.
        port_wait_cycles: u64,
    },
    /// One steal on the work-graph scheduler: a worker whose deque ran
    /// dry took jobs from another worker's deque.
    SchedSteal {
        /// Worker that stole.
        thief: usize,
        /// Worker that was stolen from.
        victim: usize,
        /// Jobs moved (steal-half: about half the victim's deque).
        taken: u64,
        /// Steal time, µs since the graph execution began.
        at_us: u64,
    },
    /// Ready-queue depth sample, taken each time a scheduled node starts
    /// executing.
    SchedQueue {
        /// Sample time, µs since the graph execution began.
        at_us: u64,
        /// Ready (claimable) nodes across every worker deque.
        depth: u64,
    },
    /// Per-worker utilization over one graph execution, emitted when the
    /// pool drains.
    SchedWorker {
        /// Worker index within the pool.
        worker: usize,
        /// Nodes this worker executed.
        jobs: u64,
        /// Steals this worker performed.
        steals: u64,
        /// Time spent executing nodes, µs.
        busy_us: u64,
        /// Worker lifetime from pool start to drain, µs.
        span_us: u64,
    },
    /// Whole-graph summary of one work-graph execution: shape, steal
    /// totals, and the measured critical path (the longest
    /// dependency-ordered chain of node durations — the wall-clock floor
    /// no worker count can beat).
    SchedSummary {
        /// Nodes in the graph.
        nodes: u64,
        /// Dependency edges in the graph.
        edges: u64,
        /// Worker threads.
        workers: u64,
        /// Total steals across workers.
        steals: u64,
        /// Measured critical-path length, µs.
        critical_path_us: u64,
        /// Wall-clock of the whole execution, µs.
        elapsed_us: u64,
    },
}

impl Event {
    /// The event's `"event"` discriminator in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Controller { .. } => "controller",
            Event::Allocation { .. } => "allocation",
            Event::RunSummary { .. } => "run_summary",
            Event::WorkerSpan { .. } => "worker_span",
            Event::CacheStats { .. } => "cache_stats",
            Event::DiskCacheStats { .. } => "disk_cache_stats",
            Event::DetailBank { .. } => "detail_bank",
            Event::SchedSteal { .. } => "sched_steal",
            Event::SchedQueue { .. } => "sched_queue",
            Event::SchedWorker { .. } => "sched_worker",
            Event::SchedSummary { .. } => "sched_summary",
        }
    }

    /// Renders the event as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"event\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::Controller {
                interval,
                t_ms,
                app,
                name,
                alloc_bytes,
                tail_ms,
                target_low_ms,
                target_high_ms,
                deadline_ms,
                completions,
                violations,
                panics,
            } => {
                uint(&mut s, "interval", *interval);
                num(&mut s, "t_ms", *t_ms);
                uint(&mut s, "app", *app as u64);
                string(&mut s, "name", name);
                num(&mut s, "alloc_bytes", *alloc_bytes);
                match tail_ms {
                    Some(t) => num(&mut s, "tail_ms", *t),
                    None => null(&mut s, "tail_ms"),
                }
                num(&mut s, "target_low_ms", *target_low_ms);
                num(&mut s, "target_high_ms", *target_high_ms);
                num(&mut s, "deadline_ms", *deadline_ms);
                uint(&mut s, "completions", *completions);
                uint(&mut s, "violations", *violations);
                uint(&mut s, "panics", *panics);
            }
            Event::Allocation {
                interval,
                design,
                memo_hit,
                lc_bytes,
                capacity_bytes,
                coherence_lines,
                vulnerability,
            } => {
                uint(&mut s, "interval", *interval);
                string(&mut s, "design", design);
                boolean(&mut s, "memo_hit", *memo_hit);
                array(&mut s, "lc_bytes", lc_bytes);
                array(&mut s, "capacity_bytes", capacity_bytes);
                num(&mut s, "coherence_lines", *coherence_lines);
                num(&mut s, "vulnerability", *vulnerability);
            }
            Event::RunSummary {
                design,
                intervals,
                memo_hits,
                memo_misses,
            } => {
                string(&mut s, "design", design);
                uint(&mut s, "intervals", *intervals);
                uint(&mut s, "memo_hits", *memo_hits);
                uint(&mut s, "memo_misses", *memo_misses);
            }
            Event::WorkerSpan {
                worker,
                job,
                start_us,
                dur_us,
            } => {
                uint(&mut s, "worker", *worker as u64);
                uint(&mut s, "job", *job as u64);
                uint(&mut s, "start_us", *start_us);
                uint(&mut s, "dur_us", *dur_us);
            }
            Event::CacheStats {
                scope,
                hits,
                misses,
                entries,
            } => {
                string(&mut s, "scope", scope);
                uint(&mut s, "hits", *hits);
                uint(&mut s, "misses", *misses);
                uint(&mut s, "entries", *entries);
            }
            Event::DiskCacheStats {
                hits,
                misses,
                writes,
                evictions,
                corrupt_dropped,
            } => {
                uint(&mut s, "hits", *hits);
                uint(&mut s, "misses", *misses);
                uint(&mut s, "writes", *writes);
                uint(&mut s, "evictions", *evictions);
                uint(&mut s, "corrupt_dropped", *corrupt_dropped);
            }
            Event::DetailBank {
                bank,
                accesses,
                misses,
                port_conflicts,
                port_wait_cycles,
            } => {
                uint(&mut s, "bank", *bank as u64);
                uint(&mut s, "accesses", *accesses);
                uint(&mut s, "misses", *misses);
                uint(&mut s, "port_conflicts", *port_conflicts);
                uint(&mut s, "port_wait_cycles", *port_wait_cycles);
            }
            Event::SchedSteal {
                thief,
                victim,
                taken,
                at_us,
            } => {
                uint(&mut s, "thief", *thief as u64);
                uint(&mut s, "victim", *victim as u64);
                uint(&mut s, "taken", *taken);
                uint(&mut s, "at_us", *at_us);
            }
            Event::SchedQueue { at_us, depth } => {
                uint(&mut s, "at_us", *at_us);
                uint(&mut s, "depth", *depth);
            }
            Event::SchedWorker {
                worker,
                jobs,
                steals,
                busy_us,
                span_us,
            } => {
                uint(&mut s, "worker", *worker as u64);
                uint(&mut s, "jobs", *jobs);
                uint(&mut s, "steals", *steals);
                uint(&mut s, "busy_us", *busy_us);
                uint(&mut s, "span_us", *span_us);
            }
            Event::SchedSummary {
                nodes,
                edges,
                workers,
                steals,
                critical_path_us,
                elapsed_us,
            } => {
                uint(&mut s, "nodes", *nodes);
                uint(&mut s, "edges", *edges);
                uint(&mut s, "workers", *workers);
                uint(&mut s, "steals", *steals);
                uint(&mut s, "critical_path_us", *critical_path_us);
                uint(&mut s, "elapsed_us", *elapsed_us);
            }
        }
        s.push('}');
        s
    }
}

fn key(s: &mut String, k: &str) {
    s.push(',');
    s.push('"');
    s.push_str(k);
    s.push_str("\":");
}

fn uint(s: &mut String, k: &str, v: u64) {
    key(s, k);
    write!(s, "{v}").expect("write to string");
}

fn boolean(s: &mut String, k: &str, v: bool) {
    key(s, k);
    s.push_str(if v { "true" } else { "false" });
}

fn null(s: &mut String, k: &str) {
    key(s, k);
    s.push_str("null");
}

/// JSON has no NaN/Infinity; encode non-finite floats as `null`.
fn num(s: &mut String, k: &str, v: f64) {
    key(s, k);
    push_f64(s, v);
}

fn array(s: &mut String, k: &str, vs: &[f64]) {
    key(s, k);
    s.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_f64(s, *v);
    }
    s.push(']');
}

fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is shortest-roundtrip: parses back to the same bits.
        write!(s, "{v:?}").expect("write to string");
    } else {
        s.push_str("null");
    }
}

fn string(s: &mut String, k: &str, v: &str) {
    key(s, k);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(s, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_event_renders_flat_json() {
        let e = Event::Controller {
            interval: 3,
            t_ms: 400.0,
            app: 0,
            name: "xapian",
            alloc_bytes: 2.5 * 1048576.0,
            tail_ms: Some(1.25),
            target_low_ms: 1.0,
            target_high_ms: 1.2,
            deadline_ms: 1.3,
            completions: 17,
            violations: 2,
            panics: 1,
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"controller\""), "{j}");
        assert!(j.ends_with('}'), "{j}");
        assert!(j.contains("\"name\":\"xapian\""), "{j}");
        assert!(j.contains("\"tail_ms\":1.25"), "{j}");
        assert!(j.contains("\"violations\":2"), "{j}");
        // Exactly one object, no nested braces beyond the outer pair.
        assert_eq!(j.matches('{').count(), 1);
        assert_eq!(j.matches('}').count(), 1);
    }

    #[test]
    fn missing_tail_and_nonfinite_floats_become_null() {
        let e = Event::Controller {
            interval: 0,
            t_ms: f64::NAN,
            app: 1,
            name: "silo",
            alloc_bytes: f64::INFINITY,
            tail_ms: None,
            target_low_ms: 0.0,
            target_high_ms: 0.0,
            deadline_ms: 1.0,
            completions: 0,
            violations: 0,
            panics: 0,
        };
        let j = e.to_json();
        assert!(j.contains("\"tail_ms\":null"), "{j}");
        assert!(j.contains("\"t_ms\":null"), "{j}");
        assert!(j.contains("\"alloc_bytes\":null"), "{j}");
    }

    #[test]
    fn allocation_event_renders_arrays() {
        let e = Event::Allocation {
            interval: 7,
            design: "Jumanji",
            memo_hit: true,
            lc_bytes: vec![1.0, 0.0, 2.5],
            capacity_bytes: vec![],
            coherence_lines: 0.0,
            vulnerability: 0.0,
        };
        let j = e.to_json();
        assert!(j.contains("\"memo_hit\":true"), "{j}");
        assert!(j.contains("\"lc_bytes\":[1.0,0.0,2.5]"), "{j}");
        assert!(j.contains("\"capacity_bytes\":[]"), "{j}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        string(&mut s, "k", "a\"b\\c\nd\u{1}");
        assert_eq!(s, ",\"k\":\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn kinds_are_distinct_and_stable() {
        let span = Event::WorkerSpan {
            worker: 0,
            job: 0,
            start_us: 0,
            dur_us: 0,
        };
        let bank = Event::DetailBank {
            bank: 0,
            accesses: 0,
            misses: 0,
            port_conflicts: 0,
            port_wait_cycles: 0,
        };
        assert_eq!(span.kind(), "worker_span");
        assert_eq!(bank.kind(), "detail_bank");
        assert!(span.to_json().contains("\"event\":\"worker_span\""));
        assert!(bank.to_json().contains("\"event\":\"detail_bank\""));
    }

    #[test]
    fn sched_events_render_flat_json() {
        let steal = Event::SchedSteal {
            thief: 2,
            victim: 0,
            taken: 5,
            at_us: 1234,
        };
        assert_eq!(steal.kind(), "sched_steal");
        let j = steal.to_json();
        assert!(j.starts_with("{\"event\":\"sched_steal\""), "{j}");
        assert!(j.contains("\"thief\":2"), "{j}");
        assert!(j.contains("\"victim\":0"), "{j}");
        assert!(j.contains("\"taken\":5"), "{j}");

        let q = Event::SchedQueue {
            at_us: 10,
            depth: 7,
        };
        assert!(q.to_json().contains("\"depth\":7"));

        let w = Event::SchedWorker {
            worker: 1,
            jobs: 40,
            steals: 3,
            busy_us: 900,
            span_us: 1000,
        };
        let j = w.to_json();
        assert!(j.contains("\"jobs\":40"), "{j}");
        assert!(j.contains("\"busy_us\":900"), "{j}");

        let s = Event::SchedSummary {
            nodes: 100,
            edges: 80,
            workers: 4,
            steals: 9,
            critical_path_us: 5000,
            elapsed_us: 6000,
        };
        let j = s.to_json();
        assert!(j.starts_with("{\"event\":\"sched_summary\""), "{j}");
        assert!(j.contains("\"critical_path_us\":5000"), "{j}");
        assert_eq!(j.matches('{').count(), 1);
    }

    #[test]
    fn cache_stats_event_renders_counters() {
        let e = Event::CacheStats {
            scope: "runs",
            hits: 12,
            misses: 4,
            entries: 4,
        };
        assert_eq!(e.kind(), "cache_stats");
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"cache_stats\""), "{j}");
        assert!(j.contains("\"scope\":\"runs\""), "{j}");
        assert!(j.contains("\"hits\":12"), "{j}");
        assert!(j.contains("\"misses\":4"), "{j}");
        assert!(j.contains("\"entries\":4"), "{j}");
    }

    #[test]
    fn disk_cache_stats_serializes_every_counter() {
        let e = Event::DiskCacheStats {
            hits: 9,
            misses: 3,
            writes: 7,
            evictions: 1,
            corrupt_dropped: 2,
        };
        assert_eq!(e.kind(), "disk_cache_stats");
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"disk_cache_stats\""), "{j}");
        assert!(j.contains("\"hits\":9"), "{j}");
        assert!(j.contains("\"misses\":3"), "{j}");
        assert!(j.contains("\"writes\":7"), "{j}");
        assert!(j.contains("\"evictions\":1"), "{j}");
        assert!(j.contains("\"corrupt_dropped\":2"), "{j}");
    }
}
