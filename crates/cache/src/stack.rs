//! Mattson LRU stack-distance profiling.
//!
//! [`StackProfiler`] observes a stream of line addresses and produces the
//! exact LRU miss curve at any capacity granularity in one pass. The
//! hardware UMONs (`nuca-umon`) are sampled versions of this structure, and
//! the paper measures LRU curves precisely because DRRIP's curve can then be
//! approximated by their convex hull (Talus, Sec. IV-A).

// The reuse-distance index is Mix64Build-hashed; clippy's type ban
// cannot see hasher parameters — jumanji-lint checks them precisely.
#![allow(clippy::disallowed_types)]

use crate::{LineAddr, MissCurve};
use nuca_types::hash::Mix64Build;
use std::collections::HashMap;

/// One-pass LRU stack-distance profiler (Mattson's algorithm).
///
/// Instead of materializing the LRU stack as a `Vec` and paying an O(n)
/// scan-and-shift per access, the profiler keeps an *order-statistic*
/// view of it: a Fenwick (binary-indexed) tree over access positions, in
/// which bit *t* is set iff position *t* is the most recent access of
/// some line. The stack depth of a reuse is then "how many distinct lines
/// were touched since this line's last access" — a prefix-sum difference,
/// O(log n) — and moving a line to the top of the stack is one bit clear
/// plus one bit append.
///
/// # Examples
///
/// ```
/// use nuca_cache::StackProfiler;
/// let mut p = StackProfiler::new();
/// for _ in 0..10 {
///     for line in 0..4u64 {
///         p.record(line);
///     }
/// }
/// // With >= 4 lines of capacity, only the 4 cold misses remain.
/// let curve = p.miss_curve(1, 8);
/// assert_eq!(curve.at(4), 4.0);
/// assert_eq!(curve.at(3), 4.0 + 9.0 * 4.0); // each iteration re-misses all 4
/// ```
#[derive(Debug, Default, Clone)]
pub struct StackProfiler {
    /// Fenwick tree over positions `1..=accesses` (1-indexed; slot 0
    /// unused). Node `t` stores the count of set bits in
    /// `(t - lowbit(t), t]`.
    tree: Vec<u32>,
    /// Most recent access position of each line seen so far (1-based).
    last: HashMap<LineAddr, usize, Mix64Build>,
    /// Histogram of reuse distances (in lines).
    hist: Vec<u64>,
    /// Cold (first-touch) accesses.
    cold: u64,
    accesses: u64,
}

impl StackProfiler {
    /// Creates an empty profiler.
    pub fn new() -> StackProfiler {
        StackProfiler {
            tree: vec![0],
            ..StackProfiler::default()
        }
    }

    /// Number of accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of cold misses observed.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct lines observed (the footprint).
    pub fn footprint_lines(&self) -> usize {
        self.last.len()
    }

    /// Count of set bits in positions `1..=t`.
    #[inline]
    fn prefix(&self, mut t: usize) -> u32 {
        let mut sum = 0;
        while t > 0 {
            sum += self.tree[t];
            t -= t & t.wrapping_neg();
        }
        sum
    }

    /// Clears the bit at position `p`.
    #[inline]
    fn clear(&mut self, mut p: usize) {
        let n = self.tree.len() - 1;
        while p <= n {
            self.tree[p] -= 1;
            p += p & p.wrapping_neg();
        }
    }

    /// Appends a set bit at the next position (the classic Fenwick append:
    /// the new node's value is derived from the prefix sums already in the
    /// tree, so no rebuild is needed as the trace grows).
    #[inline]
    fn append_set(&mut self) {
        let t = self.tree.len();
        let lowbit = t & t.wrapping_neg();
        let node = 1 + self.prefix(t - 1) - self.prefix(t - lowbit);
        self.tree.push(node);
    }

    /// Records one access and returns its stack distance in lines
    /// (`None` for a cold first touch).
    pub fn record(&mut self, line: LineAddr) -> Option<usize> {
        self.accesses += 1;
        if self.tree.is_empty() {
            // A profiler built via `Default` rather than `new`.
            self.tree.push(0);
        }
        let t = self.tree.len(); // position of this access (1-based)
        match self.last.entry(line) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(t);
                self.cold += 1;
                self.append_set();
                None
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let p = *e.get();
                e.insert(t);
                // Depth = distinct lines whose latest access is after `p`.
                let depth = (self.prefix(t - 1) - self.prefix(p)) as usize;
                self.clear(p);
                self.append_set();
                if self.hist.len() <= depth {
                    self.hist.resize(depth + 1, 0);
                }
                self.hist[depth] += 1;
                Some(depth)
            }
        }
    }

    /// Builds the LRU miss curve: point `i` is the number of misses a
    /// fully-associative LRU cache of `i * lines_per_unit` lines would have
    /// incurred on the observed stream.
    ///
    /// `units` is the number of capacity points beyond zero; `unit_bytes`
    /// of the resulting [`MissCurve`] is `lines_per_unit * 64`.
    ///
    /// # Panics
    ///
    /// Panics if `lines_per_unit == 0`.
    pub fn miss_curve(&self, lines_per_unit: usize, units: usize) -> MissCurve {
        assert!(lines_per_unit > 0, "lines_per_unit must be nonzero");
        // suffix[d] = number of accesses with stack distance >= d.
        let maxd = self.hist.len();
        let mut points = Vec::with_capacity(units + 1);
        for u in 0..=units {
            let cap_lines = u * lines_per_unit;
            let reuse_misses: u64 = if cap_lines >= maxd {
                0
            } else {
                self.hist[cap_lines..].iter().sum()
            };
            points.push((self.cold + reuse_misses) as f64);
        }
        MissCurve::new((lines_per_unit * 64) as u64, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_only_for_first_touches() {
        let mut p = StackProfiler::new();
        assert_eq!(p.record(1), None);
        assert_eq!(p.record(2), None);
        assert_eq!(p.record(1), Some(1));
        assert_eq!(p.record(1), Some(0));
        assert_eq!(p.cold_misses(), 2);
        assert_eq!(p.accesses(), 4);
        assert_eq!(p.footprint_lines(), 2);
    }

    #[test]
    fn cyclic_scan_stack_distances() {
        // Scanning N lines cyclically gives every reuse distance N-1.
        let mut p = StackProfiler::new();
        let n = 8u64;
        for _ in 0..5 {
            for l in 0..n {
                p.record(l);
            }
        }
        let curve = p.miss_curve(1, 10);
        // Capacity >= 8 lines: only cold misses.
        assert_eq!(curve.at(8), n as f64);
        // Capacity < 8 lines: every access misses (LRU worst case on a scan).
        assert_eq!(curve.at(7), (5 * n) as f64);
        assert_eq!(curve.at(0), (5 * n) as f64);
    }

    #[test]
    fn miss_curve_is_monotone() {
        let mut p = StackProfiler::new();
        // Irregular mixed pattern.
        for i in 0..1000u64 {
            p.record(i % 17);
            p.record((i * 7) % 31);
        }
        let c = p.miss_curve(2, 20);
        for w in c.points().windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn curve_matches_direct_lru_simulation() {
        use crate::{BankConfig, CacheBank, PartitionId, ReplPolicy};
        // A single-set, fully-associative LRU bank of W lines must agree
        // with the stack profiler's curve at capacity W.
        let stream: Vec<LineAddr> = (0..500u64).map(|i| (i * i + i / 3) % 13).collect();
        let mut p = StackProfiler::new();
        for &l in &stream {
            p.record(l);
        }
        for ways in [1u32, 2, 4, 8, 16] {
            let mut bank = CacheBank::new(BankConfig {
                sets: 1,
                ways,
                policy: ReplPolicy::Lru,
            });
            for &l in &stream {
                bank.access(l, PartitionId(0));
            }
            let curve = p.miss_curve(1, 16);
            assert_eq!(
                bank.stats().misses() as f64,
                curve.at(ways as usize),
                "ways={ways}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_unit_panics() {
        StackProfiler::new().miss_curve(0, 4);
    }
}
