//! A cheap deterministic 64-bit mixer used wherever the hardware hashes an
//! address (VTB descriptor indexing, UMON set sampling, bank striping).
//!
//! Table-lookup-plus-hash is all the Jigsaw/Jumanji hardware needs
//! (Sec. IV-A), so a single well-mixed integer hash shared by every
//! component keeps the simulation self-consistent and reproducible.

/// Mixes a 64-bit value (splitmix64 finalizer).
///
/// # Examples
///
/// ```
/// use nuca_types::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mixes_low_bits_into_high_entropy() {
        // Consecutive inputs should land in different buckets of a small
        // modulus almost always.
        let buckets: HashSet<u64> = (0..128u64).map(|i| mix64(i) % 128).collect();
        assert!(buckets.len() > 70, "got {} distinct buckets", buckets.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
    }

    #[test]
    fn uniformity_over_banks() {
        // Hashing a large address range modulo 20 banks should be near
        // uniform (within 5% relative).
        let mut counts = [0u64; 20];
        let n = 200_000u64;
        for i in 0..n {
            counts[(mix64(i) % 20) as usize] += 1;
        }
        let expect = n as f64 / 20.0;
        for c in counts {
            assert!((c as f64 - expect).abs() / expect < 0.05);
        }
    }
}
