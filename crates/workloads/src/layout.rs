//! Thread-to-core layout for VMs on the mesh.
//!
//! The paper's default scenario pins each of four VMs to five cores in one
//! corner quadrant of the 5×4 chip, with the latency-critical application
//! on the corner core (Fig. 2). For other VM counts (the Fig. 17 scaling
//! study) we assign contiguous serpentine runs of tiles, which keeps each
//! VM spatially clustered.

use nuca_types::{CoreId, Mesh};

/// Core assignment for one VM: `cores[0]` hosts the first (latency-critical)
/// application, in keeping with the paper's corner placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmPlacement {
    /// The VM's cores; index 0 is the preferred LC core.
    pub cores: Vec<CoreId>,
}

/// The paper's 4-VM quadrant layout on a 5×4 mesh: each VM gets five cores
/// in one corner, LC application on the corner tile.
///
/// # Panics
///
/// Panics if the mesh is not 5×4.
pub fn quadrant_layout(mesh: Mesh) -> Vec<VmPlacement> {
    assert!(
        mesh.cols() == 5 && mesh.rows() == 4,
        "quadrant layout is specific to the paper's 5x4 mesh"
    );
    let q = |tiles: [usize; 5]| VmPlacement {
        cores: tiles.into_iter().map(CoreId).collect(),
    };
    vec![
        // NW: corner tile 0, neighbours rightward/downward.
        q([0, 1, 5, 6, 2]),
        // NE: corner tile 4.
        q([4, 3, 9, 8, 7]),
        // SW: corner tile 15.
        q([15, 16, 10, 11, 12]),
        // SE: corner tile 19.
        q([19, 18, 14, 13, 17]),
    ]
}

/// General layout: splits the mesh's tiles, visited in serpentine
/// (boustrophedon) order, into contiguous runs of the requested sizes.
///
/// Serpentine order keeps consecutive tiles adjacent, so each VM occupies a
/// spatially compact run. The first core of each run is the VM's preferred
/// LC core.
///
/// # Panics
///
/// Panics if the sizes do not sum to the number of tiles or any size is 0.
pub fn serpentine_layout(mesh: Mesh, vm_sizes: &[usize]) -> Vec<VmPlacement> {
    let total: usize = vm_sizes.iter().sum();
    assert_eq!(
        total,
        mesh.num_tiles(),
        "VM sizes must cover every core exactly once"
    );
    assert!(vm_sizes.iter().all(|&s| s > 0), "VM sizes must be nonzero");
    let mut order = Vec::with_capacity(mesh.num_tiles());
    for row in 0..mesh.rows() {
        let cols: Vec<usize> = if row % 2 == 0 {
            (0..mesh.cols()).collect()
        } else {
            (0..mesh.cols()).rev().collect()
        };
        for col in cols {
            order.push(row * mesh.cols() + col);
        }
    }
    let mut out = Vec::with_capacity(vm_sizes.len());
    let mut pos = 0;
    for &size in vm_sizes {
        let cores = order[pos..pos + size].iter().map(|&t| CoreId(t)).collect();
        out.push(VmPlacement { cores });
        pos += size;
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mesh() -> Mesh {
        Mesh::new(5, 4)
    }

    #[test]
    fn quadrants_partition_all_cores() {
        let vms = quadrant_layout(mesh());
        assert_eq!(vms.len(), 4);
        let all: HashSet<CoreId> = vms.iter().flat_map(|v| v.cores.iter().copied()).collect();
        assert_eq!(all.len(), 20);
        for v in &vms {
            assert_eq!(v.cores.len(), 5);
        }
    }

    #[test]
    fn lc_cores_sit_on_chip_corners() {
        let vms = quadrant_layout(mesh());
        let lc: Vec<usize> = vms.iter().map(|v| v.cores[0].index()).collect();
        assert_eq!(lc, vec![0, 4, 15, 19]);
    }

    #[test]
    fn quadrants_are_compact() {
        let m = mesh();
        for v in quadrant_layout(m) {
            let anchor = v.cores[0];
            for &c in &v.cores {
                let d = m.core_tile(anchor).manhattan(m.core_tile(c));
                assert!(d <= 3, "core {c} is {d} hops from its VM corner");
            }
        }
    }

    #[test]
    fn serpentine_partitions_and_clusters() {
        let m = mesh();
        let vms = serpentine_layout(m, &[5, 5, 5, 5]);
        let all: HashSet<CoreId> = vms.iter().flat_map(|v| v.cores.iter().copied()).collect();
        assert_eq!(all.len(), 20);
        // Consecutive cores in a run are adjacent on the mesh.
        for v in &vms {
            for w in v.cores.windows(2) {
                let d = m.core_tile(w[0]).manhattan(m.core_tile(w[1]));
                assert_eq!(d, 1, "serpentine neighbours must be adjacent");
            }
        }
    }

    #[test]
    fn serpentine_supports_uneven_sizes() {
        let vms = serpentine_layout(mesh(), &[4, 4, 4, 2, 2, 2, 2]);
        assert_eq!(vms.len(), 7);
        assert_eq!(vms[3].cores.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every core")]
    fn wrong_total_panics() {
        serpentine_layout(mesh(), &[5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "5x4")]
    fn quadrant_layout_rejects_other_meshes() {
        quadrant_layout(Mesh::new(4, 4));
    }
}
