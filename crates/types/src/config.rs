//! System configuration of the simulated multicore.
//!
//! [`SystemConfig::micro2020`] reproduces Table II of the paper: a 20-core
//! chip at 2.66 GHz with private L1/L2 caches, a 20 MB LLC distributed as
//! 20 × 1 MB banks over a 5×4 mesh, and four memory controllers at the chip
//! corners.

use crate::error::ConfigError;
use crate::time::Cycles;
use crate::topology::Mesh;

/// Configuration of one private cache level (L1 or L2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Access latency.
    pub latency: Cycles,
}

impl CacheLevelConfig {
    /// Number of sets given a line size.
    pub fn num_sets(&self, line_bytes: u64) -> u64 {
        self.size_bytes / (line_bytes * self.ways as u64)
    }
}

/// Configuration of the shared, banked last-level cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcConfig {
    /// Number of banks (one per tile).
    pub num_banks: usize,
    /// Capacity of one bank in bytes.
    pub bank_bytes: u64,
    /// Associativity of each bank.
    pub ways: u32,
    /// Bank access latency (tag + data array).
    pub bank_latency: Cycles,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Number of access ports per bank. Port contention on this shared
    /// resource is the basis of the paper's LLC port attack (Sec. VI-B).
    pub bank_ports: u32,
}

impl LlcConfig {
    /// Total LLC capacity across all banks, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bank_bytes * self.num_banks as u64
    }

    /// Capacity of a single way within one bank, in bytes.
    pub fn way_bytes(&self) -> u64 {
        self.bank_bytes / self.ways as u64
    }

    /// Number of sets per bank.
    pub fn sets_per_bank(&self) -> u64 {
        self.bank_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Total ways across all banks — the associativity pool available to a
    /// D-NUCA partitioner (20 banks × 32 ways = 640 in the paper).
    pub fn total_ways(&self) -> u32 {
        self.ways * self.num_banks as u32
    }
}

/// Configuration of the mesh network-on-chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Pipelined router traversal latency per hop.
    pub router_cycles: u64,
    /// Link traversal latency per hop.
    pub link_cycles: u64,
    /// Flit (and link) width in bits.
    pub flit_bits: u64,
}

impl NocConfig {
    /// Latency contributed by one hop (router + link).
    pub fn hop_latency(&self) -> Cycles {
        Cycles(self.router_cycles + self.link_cycles)
    }

    /// Number of flits needed to carry `bytes` of payload.
    pub fn flits_for_bytes(&self, bytes: u64) -> u64 {
        let bits = bytes * 8;
        bits.div_ceil(self.flit_bits)
    }
}

/// Configuration of main memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of memory controllers (placed at chip corners).
    pub num_controllers: usize,
    /// Fixed access latency once a request is issued.
    pub latency: Cycles,
    /// Minimum cycles between line transfers on one controller; models
    /// per-controller bandwidth for the bandwidth-partitioning model.
    pub cycles_per_line: u64,
}

/// Per-event dynamic energy constants, in picojoules.
///
/// Values follow the data-movement energy breakdown used by Jenga
/// \[Tsai et al., ISCA'17\], which the paper cites for Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConfig {
    /// Energy per L1 access.
    pub l1_access_pj: f64,
    /// Energy per L2 access.
    pub l2_access_pj: f64,
    /// Energy per LLC bank access.
    pub llc_bank_access_pj: f64,
    /// Energy per flit per hop on the NoC.
    pub noc_hop_flit_pj: f64,
    /// Energy per DRAM line access.
    pub dram_access_pj: f64,
}

/// Full system configuration (Table II of the paper).
///
/// # Examples
///
/// ```
/// use nuca_types::SystemConfig;
/// let cfg = SystemConfig::micro2020();
/// assert_eq!(cfg.llc.total_bytes(), 20 * 1024 * 1024);
/// assert_eq!(cfg.llc.total_ways(), 640);
/// cfg.validate().expect("the paper configuration is valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// Number of cores (one per mesh tile).
    pub num_cores: usize,
    /// Mesh columns.
    pub mesh_cols: usize,
    /// Mesh rows.
    pub mesh_rows: usize,
    /// Private L1 data cache.
    pub l1: CacheLevelConfig,
    /// Private, inclusive L2 cache.
    pub l2: CacheLevelConfig,
    /// Shared banked LLC.
    pub llc: LlcConfig,
    /// Mesh NoC parameters.
    pub noc: NocConfig,
    /// Main memory parameters.
    pub mem: MemConfig,
    /// Dynamic energy constants.
    pub energy: EnergyConfig,
}

impl SystemConfig {
    /// The 20-core configuration of the paper's evaluation (Table II).
    pub fn micro2020() -> SystemConfig {
        SystemConfig {
            freq_hz: 2.66e9,
            num_cores: 20,
            mesh_cols: 5,
            mesh_rows: 4,
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: Cycles(3),
            },
            l2: CacheLevelConfig {
                size_bytes: 128 * 1024,
                ways: 8,
                latency: Cycles(6),
            },
            llc: LlcConfig {
                num_banks: 20,
                bank_bytes: 1024 * 1024,
                ways: 32,
                bank_latency: Cycles(13),
                line_bytes: 64,
                bank_ports: 1,
            },
            noc: NocConfig {
                router_cycles: 2,
                link_cycles: 1,
                flit_bits: 128,
            },
            mem: MemConfig {
                num_controllers: 4,
                latency: Cycles(120),
                cycles_per_line: 4,
            },
            energy: EnergyConfig {
                // Jenga-style relative magnitudes (pJ per event).
                l1_access_pj: 10.0,
                l2_access_pj: 25.0,
                llc_bank_access_pj: 110.0,
                noc_hop_flit_pj: 16.0,
                dram_access_pj: 2000.0,
            },
        }
    }

    /// The mesh topology implied by this configuration.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.mesh_cols, self.mesh_rows)
    }

    /// Checks internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the mesh does not cover the cores and
    /// banks, when sizes are not divisible into sets/ways/lines, or when any
    /// required quantity is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let tiles = self.mesh_cols * self.mesh_rows;
        if tiles == 0 {
            return Err(ConfigError::new("mesh has zero tiles"));
        }
        if self.num_cores != tiles {
            return Err(ConfigError::new(format!(
                "num_cores ({}) must equal mesh tiles ({tiles})",
                self.num_cores
            )));
        }
        if self.llc.num_banks != tiles {
            return Err(ConfigError::new(format!(
                "llc.num_banks ({}) must equal mesh tiles ({tiles})",
                self.llc.num_banks
            )));
        }
        if self.llc.ways == 0 || self.llc.bank_ports == 0 {
            return Err(ConfigError::new("LLC ways and ports must be nonzero"));
        }
        if !self
            .llc
            .bank_bytes
            .is_multiple_of(self.llc.line_bytes * self.llc.ways as u64)
        {
            return Err(ConfigError::new(
                "LLC bank size must be divisible into sets of ways of lines",
            ));
        }
        for (name, lvl) in [("l1", &self.l1), ("l2", &self.l2)] {
            if lvl.ways == 0 {
                return Err(ConfigError::new(format!("{name} ways must be nonzero")));
            }
            if !lvl
                .size_bytes
                .is_multiple_of(self.llc.line_bytes * lvl.ways as u64)
            {
                return Err(ConfigError::new(format!(
                    "{name} size must be divisible into sets of ways of lines"
                )));
            }
        }
        if self.mem.num_controllers == 0 {
            return Err(ConfigError::new("need at least one memory controller"));
        }
        if self.freq_hz <= 0.0 || self.freq_hz.is_nan() {
            return Err(ConfigError::new("frequency must be positive"));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    /// Defaults to the paper's Table II configuration.
    fn default() -> Self {
        SystemConfig::micro2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let cfg = SystemConfig::micro2020();
        assert_eq!(cfg.num_cores, 20);
        assert_eq!(cfg.mesh_cols * cfg.mesh_rows, 20);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.latency, Cycles(3));
        assert_eq!(cfg.l2.size_bytes, 128 * 1024);
        assert_eq!(cfg.l2.latency, Cycles(6));
        assert_eq!(cfg.llc.num_banks, 20);
        assert_eq!(cfg.llc.bank_bytes, 1024 * 1024);
        assert_eq!(cfg.llc.ways, 32);
        assert_eq!(cfg.llc.bank_latency, Cycles(13));
        assert_eq!(cfg.noc.router_cycles, 2);
        assert_eq!(cfg.noc.link_cycles, 1);
        assert_eq!(cfg.noc.flit_bits, 128);
        assert_eq!(cfg.mem.num_controllers, 4);
        assert_eq!(cfg.mem.latency, Cycles(120));
        cfg.validate().unwrap();
    }

    #[test]
    fn derived_llc_quantities() {
        let llc = SystemConfig::micro2020().llc;
        assert_eq!(llc.total_bytes(), 20 << 20);
        assert_eq!(llc.way_bytes(), 32 * 1024);
        assert_eq!(llc.sets_per_bank(), 512);
        assert_eq!(llc.total_ways(), 640);
    }

    #[test]
    fn noc_flit_math() {
        let noc = SystemConfig::micro2020().noc;
        assert_eq!(noc.hop_latency(), Cycles(3));
        // A 64 B line is 512 bits = 4 flits of 128 bits.
        assert_eq!(noc.flits_for_bytes(64), 4);
        // A small 8 B control message is a single flit.
        assert_eq!(noc.flits_for_bytes(8), 1);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = SystemConfig::micro2020();
        cfg.num_cores = 16;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::micro2020();
        cfg.llc.ways = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::micro2020();
        cfg.llc.bank_bytes = 1000; // not divisible into 64 B lines x 32 ways
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::micro2020();
        cfg.mem.num_controllers = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::micro2020();
        cfg.freq_hz = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_micro2020() {
        assert_eq!(SystemConfig::default(), SystemConfig::micro2020());
    }

    #[test]
    fn l1_sets() {
        let cfg = SystemConfig::micro2020();
        assert_eq!(cfg.l1.num_sets(64), 64);
        assert_eq!(cfg.l2.num_sets(64), 256);
    }
}
