//! The paper's headline evaluation: Fig. 13 (tail latency + batch
//! speedup distributions), Fig. 14 (vulnerability), Fig. 15 (energy),
//! and Fig. 16 (the cost of Jumanji's security and simplicity).

use super::{groups_by_load, load_label, sim_opts};
use crate::spec::ExperimentSpec;
use crate::{run_matrices, BoxStats, LcGroup};
use jumanji::prelude::*;
use jumanji::types::Error;
use std::io::Write;

/// Fig. 13: normalized tail latency and gmean batch weighted speedup
/// (relative to Static) over random batch mixes, at high and low
/// latency-critical load, for each workload group and design.
///
/// Box-and-whisker rows: min, q1, median, q3, max over mixes.
pub fn fig13(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let designs = &spec.designs;
    let opts = sim_opts(spec);
    writeln!(
        out,
        "# Fig. 13: tail latency + batch speedup over {mixes} random mixes"
    )?;
    writeln!(out, "group\tload\tdesign\tmetric\tmin\tq1\tmedian\tq3\tmax")?;
    // All (load, group) matrices go through one fan-out so every worker
    // stays busy even at small mix counts.
    let matrices = groups_by_load(&[LcLoad::High, LcLoad::Low]);
    let results = run_matrices(&matrices, designs, mixes, &opts, spec.threads, tel)?;
    for ((group, load), cells) in matrices.iter().zip(&results) {
        let load_label = load_label(*load);
        for (design, cell) in designs.iter().zip(cells) {
            writeln!(
                out,
                "{}\t{}\t{}\tnorm_tail\t{}",
                group.label(),
                load_label,
                design,
                BoxStats::of(&cell.norm_tails)?.tsv()
            )?;
            writeln!(
                out,
                "{}\t{}\t{}\tspeedup\t{}",
                group.label(),
                load_label,
                design,
                BoxStats::of(&cell.speedups)?.tsv()
            )?;
        }
        // Per-group gmean summary (quoted in the text).
        for (design, cell) in designs.iter().zip(cells) {
            eprintln!(
                "[summary] {} {} {}: gmean speedup {:+.1}%, median norm tail {:.2}",
                group.label(),
                load_label,
                design,
                (cell.gmean_speedup() - 1.0) * 100.0,
                BoxStats::of(&cell.norm_tails)?.median
            );
        }
    }
    writeln!(
        out,
        "# expected: Adaptive/VM-Part/Jumanji norm tails ~<=1 (rare exceptions);"
    )?;
    writeln!(
        out,
        "# Jigsaw violates massively (up to 100x+); speedups: Jumanji 11-15%,"
    )?;
    writeln!(out, "# Jigsaw 11-18%, Adaptive <=4%, VM-Part <=3%.")?;
    Ok(())
}

/// Fig. 14: each LLC design's vulnerability to port attacks — average
/// number of potential attackers per LLC access, averaged over all
/// experiments.
pub fn fig14(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let designs = &spec.designs;
    let opts = sim_opts(spec);
    let matrices = groups_by_load(&[LcLoad::High, LcLoad::Low]);
    let results = run_matrices(&matrices, designs, mixes, &opts, spec.threads, tel)?;
    let mut acc = vec![Vec::new(); designs.len()];
    for cells in &results {
        for (d, cell) in cells.iter().enumerate() {
            acc[d].extend(cell.vulnerability.iter().copied());
        }
    }
    writeln!(
        out,
        "# Fig. 14: avg potential attackers per LLC access ({mixes} mixes/group)"
    )?;
    writeln!(out, "design\tavg_attackers")?;
    for (design, vals) in designs.iter().zip(&acc) {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        writeln!(out, "{design}\t{mean:.3}")?;
    }
    writeln!(
        out,
        "# expected: Adaptive = VM-Part = 15 (all untrusted apps), Jigsaw small"
    )?;
    writeln!(out, "# but nonzero (paper: 0.63), Jumanji exactly 0.")?;
    Ok(())
}

/// Fig. 15: dynamic data-movement energy at high load, broken down into
/// L1 / L2 / LLC banks / NoC / memory, normalized to the first design in
/// the list (Static by default).
pub fn fig15(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let designs = &spec.designs;
    let opts = sim_opts(spec);
    writeln!(
        out,
        "# Fig. 15: data-movement energy at high load, normalized to Static"
    )?;
    writeln!(out, "group\tdesign\tl1\tl2\tllc\tnoc\tmem\ttotal")?;
    let mut totals = vec![0.0f64; designs.len()];
    let mut static_total = 0.0f64;
    let matrices: Vec<(LcGroup, LcLoad)> = LcGroup::all()
        .into_iter()
        .map(|g| (g, LcLoad::High))
        .collect();
    let results = run_matrices(&matrices, designs, mixes, &opts, spec.threads, tel)?;
    for ((group, _), cells) in matrices.iter().zip(&results) {
        // Per-group baseline (first design) for normalization.
        let base: f64 = cells[0]
            .energy
            .iter()
            .map(|(a, b, c, d, e)| a + b + c + d + e)
            .sum();
        for (d, (design, cell)) in designs.iter().zip(cells).enumerate() {
            let sum = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> f64 {
                cell.energy.iter().map(f).sum::<f64>() / base
            };
            let l1 = sum(|e| e.0);
            let l2 = sum(|e| e.1);
            let llc = sum(|e| e.2);
            let noc = sum(|e| e.3);
            let mem = sum(|e| e.4);
            let total = l1 + l2 + llc + noc + mem;
            writeln!(
                out,
                "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                group.label(),
                design,
                l1,
                l2,
                llc,
                noc,
                mem,
                total
            )?;
            totals[d] += total;
            if d == 0 {
                static_total += 1.0;
            }
        }
    }
    writeln!(out, "# averages over groups (normalized total energy):")?;
    for (design, t) in designs.iter().zip(&totals) {
        writeln!(out, "# {design}: {:.3}", t / static_total)?;
    }
    writeln!(
        out,
        "# expected: Jumanji ~= Jigsaw ~= 0.87 (13% savings); Adaptive ~1.00;"
    )?;
    writeln!(
        out,
        "# VM-Part slightly above 1.00 (associativity-induced extra misses)."
    )?;
    Ok(())
}

/// Fig. 16: what Jumanji's security and simplicity cost — batch speedup
/// of Jumanji vs. "Jumanji: Insecure" (no bank isolation) and "Jumanji:
/// Ideal Batch" (no competition with latency-critical placement), at
/// high and low load.
pub fn fig16(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let designs = &spec.designs;
    let opts = sim_opts(spec);
    writeln!(
        out,
        "# Fig. 16: Jumanji vs Insecure vs Ideal Batch ({mixes} mixes/group)"
    )?;
    writeln!(out, "load\tgroup\tjumanji_pct\tinsecure_pct\tideal_pct")?;
    let loads = [LcLoad::High, LcLoad::Low];
    let matrices = groups_by_load(&loads);
    let results = run_matrices(&matrices, designs, mixes, &opts, spec.threads, tel)?;
    let groups_per_load = LcGroup::all().len();
    for (load, chunk) in loads.iter().zip(results.chunks(groups_per_load)) {
        let label = load_label(*load);
        let mut sums = vec![0.0f64; designs.len()];
        let mut count = 0.0;
        for (group, cells) in LcGroup::all().iter().zip(chunk) {
            let g: Vec<String> = cells
                .iter()
                .map(|c| format!("{:.2}", (c.gmean_speedup() - 1.0) * 100.0))
                .collect();
            writeln!(out, "{label}\t{}\t{}", group.label(), g.join("\t"))?;
            for (s, c) in sums.iter_mut().zip(cells) {
                *s += (c.gmean_speedup() - 1.0) * 100.0;
            }
            count += 1.0;
        }
        if designs.len() == 3 {
            writeln!(
                out,
                "# {label} averages: jumanji {:.2}%, insecure {:.2}%, ideal {:.2}%",
                sums[0] / count,
                sums[1] / count,
                sums[2] / count
            )?;
        } else {
            let parts: Vec<String> = designs
                .iter()
                .zip(&sums)
                .map(|(d, s)| format!("{d} {:.2}%", s / count))
                .collect();
            writeln!(out, "# {label} averages: {}", parts.join(", "))?;
        }
    }
    writeln!(
        out,
        "# expected: Jumanji within ~3% of Insecure and ~2% of Ideal Batch (gmean)."
    )?;
    Ok(())
}
