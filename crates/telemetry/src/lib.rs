//! Zero-cost-when-disabled telemetry for the Jumanji simulator.
//!
//! Jumanji's whole mechanism is a 100 ms feedback loop — controllers
//! resizing LC allocations, the placer re-partitioning banks — but the
//! experiment harness only reports end-of-run aggregates. This crate adds
//! the missing observability layer: hot loops emit typed [`Event`]s into a
//! [`Telemetry`] sink, and the sink decides what happens to them.
//!
//! Three sinks cover the use cases:
//!
//! - [`NoopSink`] — the default. Its methods are empty `#[inline]` bodies,
//!   so a hot path monomorphized over it compiles to *exactly* the
//!   untraced code: event construction is dead code behind
//!   `sink.enabled()`, which constant-folds to `false`.
//! - [`JsonlSink`] — appends one JSON object per event to a file (or any
//!   writer). Thread-safe; the experiment engine's workers share one sink.
//! - [`RecordingSink`] — buffers events in memory for tests to assert on.
//!
//! Instrumented code follows one discipline: *construct events only behind
//! `enabled()`*. Emission never mutates simulation state, so a traced run
//! is bit-identical to an untraced one.
//!
//! ```
//! use jumanji_telemetry::{Event, RecordingSink, Telemetry};
//!
//! fn hot_loop<T: Telemetry + ?Sized>(sink: &T) {
//!     for i in 0..3u64 {
//!         // work ...
//!         if sink.enabled() {
//!             sink.emit(&Event::RunSummary {
//!                 design: "Jumanji",
//!                 intervals: i,
//!                 memo_hits: 0,
//!                 memo_misses: i,
//!             });
//!         }
//!     }
//! }
//!
//! let sink = RecordingSink::new();
//! hot_loop(&sink);
//! assert_eq!(sink.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;

pub use event::Event;

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A telemetry sink.
///
/// Implementations must be cheap to query via [`Telemetry::enabled`]:
/// hot paths hoist that call and skip event construction entirely when it
/// returns `false`. `Send + Sync` because the parallel experiment engine
/// shares one sink across its worker pool.
pub trait Telemetry: Send + Sync {
    /// Whether this sink records anything. Callers skip building events
    /// when this is `false`.
    fn enabled(&self) -> bool;

    /// Consumes one event. Must not panic on any well-formed event.
    fn emit(&self, event: &Event);
}

/// The disabled sink: everything inlines to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Telemetry for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&self, _event: &Event) {}
}

/// A sink that writes one JSON line per event to a shared writer.
///
/// Lines from concurrent workers interleave whole — the writer is behind a
/// mutex and each event is written with its newline in one call — so the
/// output is always valid JSONL, just not globally ordered across threads.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink appending to any writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) `path` and writes events to it, buffered.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let f = File::create(path)?;
        Ok(JsonlSink::new(Box::new(BufWriter::new(f))))
    }

    /// Flushes buffered events to the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("telemetry writer lock").flush()
    }
}

impl Telemetry for JsonlSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("telemetry writer lock");
        // A full disk mid-experiment shouldn't take the simulation down;
        // telemetry is best-effort by contract.
        let _ = out.write_all(line.as_bytes());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// An in-memory sink for tests.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A copy of every event recorded so far, in emission order
    /// (per-thread order under concurrency).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry buffer lock").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry buffer lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("telemetry buffer lock"))
    }
}

impl Telemetry for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("telemetry buffer lock")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> Event {
        Event::RunSummary {
            design: "Jumanji",
            intervals: i,
            memo_hits: i / 2,
            memo_misses: i - i / 2,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.emit(&sample(1)); // must be a no-op, not a panic
    }

    #[test]
    fn recording_sink_round_trips_events() {
        let s = RecordingSink::new();
        assert!(s.is_empty());
        let events: Vec<Event> = (0..5).map(sample).collect();
        for e in &events {
            s.emit(e);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.events(), events);
        assert_eq!(s.take(), events);
        assert!(s.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let dir = std::env::temp_dir().join("jumanji_telemetry_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("sink_{}.jsonl", std::process::id()));
        {
            let s = JsonlSink::create(&path).expect("create sink");
            assert!(s.enabled());
            for i in 0..4 {
                s.emit(&sample(i));
            }
            s.flush().expect("flush");
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":\"run_summary\""), "{line}");
            assert!(line.contains(&format!("\"intervals\":{i}")), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sinks_are_object_safe_and_shareable() {
        // The experiment engine passes sinks as `&dyn Telemetry` across
        // scoped threads; this pins the object-safety + Sync contract.
        let rec = RecordingSink::new();
        let dynamic: &dyn Telemetry = &rec;
        std::thread::scope(|sc| {
            for _ in 0..2 {
                sc.spawn(|| dynamic.emit(&sample(9)));
            }
        });
        assert_eq!(rec.len(), 2);
    }
}
