//! The process-wide experiment-cell cache.
//!
//! The paper's evaluation is one big matrix of `(mix, load, design, seed)`
//! cells rendered eighteen different ways — fig13 and fig14 run the *same*
//! experiments and differ only in rendering, the sensitivity study's
//! default rows duplicate the main-results cells, and so on. [`CellCache`]
//! memoizes the three expensive pure computations behind a cell, shared by
//! every worker thread and every figure in the process:
//!
//! - **experiments** — constructed [`Experiment`]s (profile hulls,
//!   deadline isolation runs, stream generators), keyed by the content of
//!   `(mix, load, options)`;
//! - **runs** — completed [`ExperimentResult`]s, keyed by the experiment's
//!   content key plus the design;
//! - **details** — completed detailed-simulator [`DetailReport`]s (by far
//!   the heaviest cells in the repo — fig02 and validate), keyed by the
//!   full input of [`run_detailed`];
//! - **allocs** — one-shot [`DesignKind::allocate`] placements, keyed by
//!   [`PlacementInput::content_key`] plus the design.
//!
//! Keys are 128-bit content fingerprints
//! ([`fingerprint128`](jumanji::types::hash::fingerprint128)) of the
//! `Debug` form of the full input, so two cells share an entry exactly
//! when the simulation would do identical work.
//!
//! **Experiment handles are lazy.** [`CellCache::experiment`] returns a
//! handle that *names* the experiment (inputs + content key) without
//! constructing it; construction happens at most once per handle, on
//! first use inside [`CellCache::run`] — and only when the run cell
//! itself has to be computed. With a warm disk cache that means a run
//! can serve every figure without ever paying for hull sampling or
//! deadline isolation runs.
//!
//! **The cache can be disk-backed.** [`CellCache::attach_disk`] plugs in
//! a [`DiskCache`] (see [`crate::disk_cache`]); run and allocation
//! lookups then read through the in-memory maps to disk and write newly
//! computed cells back, so the dedup survives the process — a warm
//! `suite` run or a standalone `fig14` after a prior `fig13` renders
//! almost entirely from disk. `--cache-dir DIR` (or
//! `JUMANJI_CACHE_DIR`) on any figure binary attaches the store.
//!
//! **Tracing bypasses cache reads.** A traced run must emit its complete
//! per-interval event stream, so when the sink is enabled the cache
//! re-runs the experiment (writing the result through for later untraced
//! readers). Telemetry's bit-identical contract makes the written-through
//! result indistinguishable from an untraced computation.
//!
//! The escape hatch: `--no-cache` on any figure binary (or
//! `JUMANJI_NO_CACHE=1`) disables the global cache, making every lookup
//! compute fresh (and ignoring any attached disk store).

use crate::disk_cache::{DiskCache, DiskCacheStats};
use jumanji::core::{Allocation, DesignKind, PlacementInput};
use jumanji::sim::detail::{run_detailed, DetailOptions, DetailReport};
use jumanji::sim::perf::Profile;
use jumanji::sim::{ratio_hull_cache_stats, Experiment, ExperimentResult, SimOptions};
use jumanji::telemetry::{NoopSink, Telemetry};
use jumanji::types::hash::fingerprint128;
use jumanji::types::{CoreId, MapStats, ShardedMap, VmId};
use jumanji::workloads::{LcLoad, WorkloadMix};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The cache identity of an experiment: a 128-bit content fingerprint of
/// `(mix, load, opts)`. This is the key [`CellCache::experiment`] files
/// entries under, exposed so the suite's plan pass ([`crate::plan`]) can
/// name a cell without constructing it.
pub fn experiment_key(mix: &WorkloadMix, load: LcLoad, opts: &SimOptions) -> u128 {
    fingerprint128(format!("exp|{load:?}|{opts:?}|{mix:?}").as_bytes())
}

/// The cache identity of a completed `(experiment, design)` run cell —
/// the key [`CellCache::run`] files results under.
pub fn run_key(experiment_key: u128, design: DesignKind) -> u128 {
    fingerprint128(format!("run|{experiment_key:032x}|{design:?}").as_bytes())
}

/// The cache identity of a detailed-simulator cell: a 128-bit content
/// fingerprint of every input [`run_detailed`] consumes — the full
/// [`DetailOptions`] (which carry the machine config, access budget, and
/// stream seed), the per-app profiles, core pinning, VM membership, and
/// the allocation under test. This is the key [`CellCache::run_detail`]
/// files reports under, exposed so the plan pass can name a detailed
/// cell without simulating it.
pub fn detail_key(
    opts: &DetailOptions,
    profiles: &[Profile],
    cores: &[CoreId],
    vms: &[VmId],
    alloc: &Allocation,
) -> u128 {
    fingerprint128(format!("detail|{opts:?}|{profiles:?}|{cores:?}|{vms:?}|{alloc:?}").as_bytes())
}

/// The deferred inputs of an experiment plus its at-most-once
/// construction slot.
#[derive(Debug)]
struct ExpCell {
    mix: WorkloadMix,
    load: LcLoad,
    opts: SimOptions,
    exp: OnceLock<Arc<Experiment>>,
}

impl ExpCell {
    fn construct(&self) -> Arc<Experiment> {
        Arc::new(Experiment::new(
            self.mix.clone(),
            self.load,
            self.opts.clone(),
        ))
    }
}

/// A lazily constructed experiment plus the cache identity it is filed
/// under (`None` when the cache is disabled, so downstream run lookups
/// also compute fresh).
///
/// Cloning a handle shares the construction slot: however many clones
/// exist, the experiment is built at most once per handle family — and
/// at most once per *process* when the handles came from an enabled
/// cache, whose `experiments` map dedups construction across handles
/// with the same key.
#[derive(Debug, Clone)]
pub struct ExperimentHandle {
    cell: Arc<ExpCell>,
    key: Option<u128>,
}

impl ExperimentHandle {
    /// The underlying experiment, constructing it on first use.
    ///
    /// This standalone accessor does not consult any cache map (it has
    /// no cache reference); handles obtained from the same
    /// [`CellCache`] share constructions through [`CellCache::run`]
    /// instead.
    pub fn experiment(&self) -> &Experiment {
        self.cell.exp.get_or_init(|| self.cell.construct())
    }
}

/// Where [`CellCache::run_sourced`] found (or had to put) a run cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Simulated in this call (and written through to every layer).
    Computed,
    /// Served from the in-memory map.
    Memory,
    /// Served from the attached disk store.
    Disk,
}

/// Counter snapshot of every memo a [`CellCache`] reports on: its own
/// three maps, the simulator's process-wide ratio-hull memo, and the
/// attached disk store (when any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellCacheStats {
    /// Completed experiment results.
    pub runs: MapStats,
    /// Completed detailed-simulator reports.
    pub details: MapStats,
    /// Constructed experiments (lazy: only cells that were actually
    /// forced appear here — a fully warm run constructs none).
    pub experiments: MapStats,
    /// One-shot placement allocations.
    pub allocs: MapStats,
    /// The simulator's shared ratio-hull memo.
    pub hulls: MapStats,
    /// The attached disk store's counters (`None` when memory-only).
    pub disk: Option<DiskCacheStats>,
}

/// A shared concurrent cache of experiment cells (see the module docs).
///
/// All methods are `&self` and thread-safe; the figure binaries share one
/// instance via [`CellCache::global`], while tests that need isolated
/// counters construct their own with [`CellCache::new`].
#[derive(Debug)]
pub struct CellCache {
    enabled: AtomicBool,
    experiments: ShardedMap<u128, Arc<Experiment>>,
    runs: ShardedMap<u128, Arc<ExperimentResult>>,
    details: ShardedMap<u128, Arc<DetailReport>>,
    allocs: ShardedMap<u128, Allocation>,
    disk: RwLock<Option<Arc<DiskCache>>>,
}

impl Default for CellCache {
    fn default() -> CellCache {
        CellCache::new()
    }
}

impl CellCache {
    /// An empty, enabled, memory-only cache.
    pub fn new() -> CellCache {
        CellCache {
            enabled: AtomicBool::new(true),
            experiments: ShardedMap::new(),
            runs: ShardedMap::new(),
            details: ShardedMap::new(),
            allocs: ShardedMap::new(),
            disk: RwLock::new(None),
        }
    }

    /// The process-wide cache every figure and the `suite` binary share.
    ///
    /// Honours `JUMANJI_NO_CACHE` at first use: any value other than empty
    /// or `0` starts the cache disabled.
    #[allow(clippy::disallowed_methods)] // env read carries a lint.toml [[allow]]
    pub fn global() -> &'static CellCache {
        static GLOBAL: OnceLock<CellCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = CellCache::new();
            if let Ok(v) = std::env::var("JUMANJI_NO_CACHE") {
                if !v.is_empty() && v != "0" {
                    cache.set_enabled(false);
                }
            }
            cache
        })
    }

    /// Whether lookups may reuse memoized results.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns memoization on or off. Disabling does not drop existing
    /// entries; it makes every lookup compute fresh.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Backs this cache with a persistent store: run and allocation
    /// lookups read through to it and write computed cells back.
    /// Replaces any previously attached store.
    pub fn attach_disk(&self, disk: Arc<DiskCache>) {
        *self.disk.write().expect("disk slot lock") = Some(disk);
    }

    /// Detaches the persistent store (memory-only from here on) and
    /// returns it, e.g. to read its final counters.
    pub fn detach_disk(&self) -> Option<Arc<DiskCache>> {
        self.disk.write().expect("disk slot lock").take()
    }

    /// The attached persistent store, if any — `None` whenever the
    /// cache is disabled, so `--no-cache` really computes everything.
    pub fn disk(&self) -> Option<Arc<DiskCache>> {
        if !self.enabled() {
            return None;
        }
        self.disk.read().expect("disk slot lock").clone()
    }

    /// A lazy handle naming the experiment for `(mix, load, opts)`.
    ///
    /// No construction happens here: the handle carries the inputs and
    /// the content key, and [`CellCache::run`] forces construction only
    /// when a run cell actually has to be simulated. Forced
    /// constructions are deduplicated process-wide through the
    /// `experiments` map while the cache is enabled.
    pub fn experiment(&self, mix: WorkloadMix, load: LcLoad, opts: SimOptions) -> ExperimentHandle {
        let key = self.enabled().then(|| experiment_key(&mix, load, &opts));
        ExperimentHandle {
            cell: Arc::new(ExpCell {
                mix,
                load,
                opts,
                exp: OnceLock::new(),
            }),
            key,
        }
    }

    /// Forces `handle`'s experiment, deduplicating the construction
    /// through the cache's `experiments` map when the handle was issued
    /// by an enabled cache.
    pub fn force_experiment(&self, handle: &ExperimentHandle) -> Arc<Experiment> {
        Arc::clone(handle.cell.exp.get_or_init(|| {
            match handle.key {
                Some(key) if self.enabled() => self
                    .experiments
                    .get_or_compute(key, || handle.cell.construct()),
                _ => handle.cell.construct(),
            }
        }))
    }

    /// The result of running `design` on `handle`'s experiment, computed
    /// at most once per process while the cache is enabled and `tel` is
    /// disabled.
    ///
    /// An enabled sink forces a full re-run (the event stream must be
    /// complete) whose result is written through for later untraced
    /// readers — sound because traced runs are bit-identical to untraced
    /// ones by the telemetry contract.
    pub fn run(
        &self,
        handle: &ExperimentHandle,
        design: DesignKind,
        tel: &dyn Telemetry,
    ) -> Arc<ExperimentResult> {
        self.run_sourced(handle, design, tel).0
    }

    /// [`CellCache::run`] plus where the result came from, so callers
    /// measuring node durations (the suite scheduler) can tell real
    /// simulations from cache hits.
    pub fn run_sourced(
        &self,
        handle: &ExperimentHandle,
        design: DesignKind,
        tel: &dyn Telemetry,
    ) -> (Arc<ExperimentResult>, RunSource) {
        let Some(base) = handle.key else {
            let result = Arc::new(self.force_experiment(handle).run(design, tel));
            return (result, RunSource::Computed);
        };
        let key = run_key(base, design);
        if tel.enabled() {
            let result = Arc::new(self.force_experiment(handle).run(design, tel));
            self.runs.insert(key, Arc::clone(&result));
            if let Some(disk) = self.disk() {
                disk.store_run(key, &result);
            }
            return (result, RunSource::Computed);
        }
        let source = Cell::new(RunSource::Memory);
        let result = self.runs.get_or_compute(key, || {
            if let Some(disk) = self.disk() {
                if let Some(r) = disk.load_run(key) {
                    source.set(RunSource::Disk);
                    return Arc::new(r);
                }
            }
            source.set(RunSource::Computed);
            let r = Arc::new(self.force_experiment(handle).run(design, &NoopSink));
            if let Some(disk) = self.disk() {
                disk.store_run(key, &r);
            }
            r
        });
        (result, source.get())
    }

    /// The detailed-simulator report for `(opts, profiles, cores, vms,
    /// alloc)`, computed at most once per process while the cache is
    /// enabled and `tel` is disabled, with read-through to the disk
    /// store's `details/` namespace. See [`CellCache::run_detail_sourced`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_detail(
        &self,
        opts: &DetailOptions,
        profiles: &[Profile],
        cores: &[CoreId],
        vms: &[VmId],
        alloc: &Allocation,
        tel: &dyn Telemetry,
    ) -> Arc<DetailReport> {
        self.run_detail_sourced(opts, profiles, cores, vms, alloc, tel)
            .0
    }

    /// [`CellCache::run_detail`] plus where the report came from.
    ///
    /// Detailed cells follow exactly the run-cell contract: an enabled
    /// sink forces a full re-simulation (the [`Event::DetailBank`] stream
    /// must be complete) whose report is written through for later
    /// untraced readers; a disabled cache computes fresh every time.
    ///
    /// [`Event::DetailBank`]: jumanji::telemetry::Event::DetailBank
    #[allow(clippy::too_many_arguments)]
    pub fn run_detail_sourced(
        &self,
        opts: &DetailOptions,
        profiles: &[Profile],
        cores: &[CoreId],
        vms: &[VmId],
        alloc: &Allocation,
        tel: &dyn Telemetry,
    ) -> (Arc<DetailReport>, RunSource) {
        if !self.enabled() {
            let report = Arc::new(run_detailed(opts, profiles, cores, vms, alloc, tel));
            return (report, RunSource::Computed);
        }
        let key = detail_key(opts, profiles, cores, vms, alloc);
        if tel.enabled() {
            let report = Arc::new(run_detailed(opts, profiles, cores, vms, alloc, tel));
            self.details.insert(key, Arc::clone(&report));
            if let Some(disk) = self.disk() {
                disk.store_detail(key, &report);
            }
            return (report, RunSource::Computed);
        }
        let source = Cell::new(RunSource::Memory);
        let report = self.details.get_or_compute(key, || {
            if let Some(disk) = self.disk() {
                if let Some(r) = disk.load_detail(key) {
                    source.set(RunSource::Disk);
                    return Arc::new(r);
                }
            }
            source.set(RunSource::Computed);
            let r = Arc::new(run_detailed(opts, profiles, cores, vms, alloc, &NoopSink));
            if let Some(disk) = self.disk() {
                disk.store_detail(key, &r);
            }
            r
        });
        (report, source.get())
    }

    /// True when the run cell for `key` is already available without
    /// simulating: resident in memory or present on disk. A pure probe —
    /// no counters, no decode (a file that later fails validation just
    /// falls back to recompute).
    pub fn probe_run(&self, key: u128) -> bool {
        if !self.enabled() {
            return false;
        }
        self.runs.get(&key).is_some() || self.disk().is_some_and(|d| d.has_run(key))
    }

    /// [`CellCache::probe_run`] for a detailed-simulator cell.
    pub fn probe_detail(&self, key: u128) -> bool {
        if !self.enabled() {
            return false;
        }
        self.details.get(&key).is_some() || self.disk().is_some_and(|d| d.has_detail(key))
    }

    /// The allocation `design` produces for `input`, computed at most once
    /// per process per distinct input while the cache is enabled (and at
    /// most once across processes with a disk store attached).
    pub fn allocate(&self, design: DesignKind, input: &PlacementInput) -> Allocation {
        if !self.enabled() {
            return design.allocate(input);
        }
        let key =
            fingerprint128(format!("alloc|{design:?}|{:032x}", input.content_key()).as_bytes());
        self.allocs.get_or_compute(key, || {
            if let Some(disk) = self.disk() {
                if let Some(a) = disk.load_alloc(key) {
                    return a;
                }
            }
            let a = design.allocate(input);
            if let Some(disk) = self.disk() {
                disk.store_alloc(key, &a);
            }
            a
        })
    }

    /// A snapshot of every memo's counters (including the simulator's
    /// shared hull memo and the attached disk store, when any).
    pub fn stats(&self) -> CellCacheStats {
        CellCacheStats {
            runs: self.runs.stats(),
            details: self.details.stats(),
            experiments: self.experiments.stats(),
            allocs: self.allocs.stats(),
            hulls: ratio_hull_cache_stats(),
            disk: self
                .disk
                .read()
                .expect("disk slot lock")
                .as_ref()
                .map(|d| d.stats()),
        }
    }

    /// Drops every in-memory entry and resets this cache's counters.
    /// The hull memo is owned by the simulator and the disk store's
    /// files outlive the process by design; both are left alone.
    pub fn clear(&self) {
        self.experiments.clear();
        self.runs.clear();
        self.details.clear();
        self.allocs.clear();
    }
}

/// Applies process-level cache flags from a figure binary's argument
/// list: `--no-cache` disables the global cache before any experiment
/// runs; otherwise `--cache-dir DIR` (or `JUMANJI_CACHE_DIR`) attaches
/// a persistent store to it and warm-starts the simulator's model
/// memos from the store, and `--cache-cap-bytes N` (or
/// `JUMANJI_CACHE_CAP`) bounds the store's size, evicting the
/// least-recently-written entries on overflow.
pub fn apply_cache_flags(args: &[String]) {
    if wants_no_cache(args) {
        CellCache::global().set_enabled(false);
        return;
    }
    if let Some(dir) = cache_dir_from(args) {
        attach_global_disk(&dir);
        if let Some(cap) = cache_cap_from(args) {
            if let Some(disk) = CellCache::global().disk() {
                disk.set_cap_bytes(cap);
                disk.enforce_cap();
            }
        }
    }
}

/// The persistent-store directory requested by `args` or the
/// environment: `--cache-dir DIR` / `--cache-dir=DIR` beats
/// `JUMANJI_CACHE_DIR`; an empty value means "no store".
#[allow(clippy::disallowed_methods)] // env read carries a lint.toml [[allow]]
pub fn cache_dir_from(args: &[String]) -> Option<String> {
    crate::exec::flag_value(args, "--cache-dir")
        .or_else(|| std::env::var("JUMANJI_CACHE_DIR").ok())
        .filter(|dir| !dir.is_empty())
}

/// The store size cap requested by `args` or the environment:
/// `--cache-cap-bytes N` / `--cache-cap-bytes=N` beats
/// `JUMANJI_CACHE_CAP`; an unparsable or zero value means "unbounded"
/// (lenient, like every other env-sourced knob).
#[allow(clippy::disallowed_methods)] // env read carries a lint.toml [[allow]]
pub fn cache_cap_from(args: &[String]) -> Option<u64> {
    crate::exec::flag_value(args, "--cache-cap-bytes")
        .or_else(|| std::env::var("JUMANJI_CACHE_CAP").ok())
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&cap| cap > 0)
}

/// Opens `dir` and attaches it to the global cache, seeding the
/// simulator's model memos from the store. An unopenable directory
/// warns and leaves the cache memory-only — a bad flag costs the warm
/// start, never the run.
pub fn attach_global_disk(dir: &str) {
    match DiskCache::open(dir) {
        Ok(disk) => {
            let disk = Arc::new(disk);
            disk.seed_model();
            CellCache::global().attach_disk(disk);
        }
        Err(e) => {
            eprintln!("warning: cannot open --cache-dir {dir}: {e}; continuing without disk cache");
        }
    }
}

/// Persists the simulator's model memos (ratio hulls, deadlines) to the
/// global cache's disk store, if one is attached. Figure binaries call
/// this once after rendering, so the *next* process constructs warm.
pub fn persist_global_disk() {
    if let Some(disk) = CellCache::global().disk() {
        disk.persist_model();
        // Cells written during this run may have pushed a capped store
        // over its limit; evict before the next process starts.
        disk.enforce_cap();
    }
}

fn wants_no_cache(args: &[String]) -> bool {
    args.iter().any(|a| a == "--no-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji::telemetry::{Event, NoopSink, RecordingSink};
    use jumanji::types::{Seconds, SystemConfig};
    use jumanji::workloads::case_study_mix;

    fn quick_opts() -> SimOptions {
        SimOptions {
            duration: Seconds(0.5),
            ..SimOptions::default()
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("jumanji-cell-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cached_run_matches_direct_run_exactly() {
        let cache = CellCache::new();
        let handle = cache.experiment(case_study_mix(3), LcLoad::High, quick_opts());
        let cached = cache.run(&handle, DesignKind::Jumanji, &NoopSink);
        let direct = Experiment::new(case_study_mix(3), LcLoad::High, quick_opts())
            .run(DesignKind::Jumanji, &NoopSink);
        assert_eq!(format!("{cached:?}"), format!("{direct:?}"));
    }

    #[test]
    fn handles_are_lazy_and_constructions_dedup_across_handles() {
        let cache = CellCache::new();
        let h1 = cache.experiment(case_study_mix(1), LcLoad::Low, quick_opts());
        let h2 = cache.experiment(case_study_mix(1), LcLoad::Low, quick_opts());
        // Nothing is constructed until a run forces it.
        assert_eq!(cache.stats().experiments.entries, 0);
        let (r1, s1) = cache.run_sourced(&h1, DesignKind::Jigsaw, &NoopSink);
        let (r2, s2) = cache.run_sourced(&h2, DesignKind::Jigsaw, &NoopSink);
        assert_eq!(s1, RunSource::Computed);
        assert_eq!(s2, RunSource::Memory);
        assert!(Arc::ptr_eq(&r1, &r2));
        // Forcing both handles shares one construction through the map.
        assert!(Arc::ptr_eq(
            &cache.force_experiment(&h1),
            &cache.force_experiment(&h2)
        ));
        let s = cache.stats();
        assert_eq!(s.experiments.misses, 1);
        assert_eq!(s.experiments.entries, 1);
        assert_eq!(s.runs.hits, 1);
        assert_eq!(s.runs.misses, 1);
    }

    #[test]
    fn tracing_bypasses_reads_but_writes_through() {
        let cache = CellCache::new();
        let handle = cache.experiment(case_study_mix(2), LcLoad::High, quick_opts());
        // Warm the cache untraced.
        let warm = cache.run(&handle, DesignKind::Jumanji, &NoopSink);
        // A traced run must still emit the full event stream...
        let sink = RecordingSink::new();
        let traced = cache.run(&handle, DesignKind::Jumanji, &sink);
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e, Event::RunSummary { .. })),
            "traced run must emit events even on a warm cache"
        );
        // ...and its result must be bit-identical to the cached one.
        assert_eq!(format!("{traced:?}"), format!("{warm:?}"));
        // The traced result replaced the entry (write-through, counted as
        // a miss) — never served from cache.
        assert_eq!(cache.stats().runs.hits, 0);
        assert_eq!(cache.stats().runs.misses, 2);
    }

    #[test]
    fn disabled_cache_computes_fresh_and_stores_nothing() {
        let cache = CellCache::new();
        cache.set_enabled(false);
        assert!(!cache.enabled());
        let h1 = cache.experiment(case_study_mix(1), LcLoad::High, quick_opts());
        let h2 = cache.experiment(case_study_mix(1), LcLoad::High, quick_opts());
        let (r1, s1) = cache.run_sourced(&h1, DesignKind::Jumanji, &NoopSink);
        let (r2, s2) = cache.run_sourced(&h2, DesignKind::Jumanji, &NoopSink);
        assert_eq!(s1, RunSource::Computed);
        assert_eq!(s2, RunSource::Computed);
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        let s = cache.stats();
        assert_eq!(s.experiments.entries, 0);
        assert_eq!(s.runs.entries, 0);
    }

    #[test]
    fn allocations_are_memoized_by_content() {
        let cache = CellCache::new();
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let a = cache.allocate(DesignKind::Jumanji, &input);
        let b = cache.allocate(DesignKind::Jumanji, &input.clone());
        assert_eq!(a, b);
        let direct = DesignKind::Jumanji.allocate(&input);
        assert_eq!(a, direct);
        let s = cache.stats();
        assert_eq!((s.allocs.hits, s.allocs.misses), (1, 1));
        // A different design is a different cell.
        let _ = cache.allocate(DesignKind::Jigsaw, &input);
        assert_eq!(cache.stats().allocs.entries, 2);
    }

    #[test]
    fn disk_store_serves_a_fresh_cache_without_constructing() {
        let dir = temp_dir("warm");
        // Cold process: compute one run cell and persist it.
        let cold = CellCache::new();
        cold.attach_disk(Arc::new(DiskCache::open(&dir).expect("open store")));
        let handle = cold.experiment(case_study_mix(5), LcLoad::Low, quick_opts());
        let (cold_result, src) = cold.run_sourced(&handle, DesignKind::Static, &NoopSink);
        assert_eq!(src, RunSource::Computed);
        assert_eq!(cold.stats().disk.expect("disk attached").writes, 1);

        // Warm process (fresh cache, same store): the run is served from
        // disk, byte-identical, without constructing any experiment.
        let warm = CellCache::new();
        warm.attach_disk(Arc::new(DiskCache::open(&dir).expect("open store")));
        let handle = warm.experiment(case_study_mix(5), LcLoad::Low, quick_opts());
        let (warm_result, src) = warm.run_sourced(&handle, DesignKind::Static, &NoopSink);
        assert_eq!(src, RunSource::Disk);
        assert_eq!(format!("{warm_result:?}"), format!("{cold_result:?}"));
        let s = warm.stats();
        assert_eq!(s.experiments.entries, 0, "warm run must construct nothing");
        assert_eq!(s.disk.expect("disk attached").hits, 1);

        // Second lookup in the same process comes from memory.
        let (_, src) = warm.run_sourced(&handle, DesignKind::Static, &NoopSink);
        assert_eq!(src, RunSource::Memory);

        // probe_run sees disk entries; a disabled cache ignores them.
        let key = run_key(
            experiment_key(&case_study_mix(5), LcLoad::Low, &quick_opts()),
            DesignKind::Static,
        );
        let probe = CellCache::new();
        probe.attach_disk(Arc::new(DiskCache::open(&dir).expect("open store")));
        assert!(probe.probe_run(key));
        probe.set_enabled(false);
        assert!(!probe.probe_run(key));
        assert!(probe.disk().is_none(), "--no-cache must ignore the store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_alloc_round_trip() {
        let dir = temp_dir("alloc");
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let cold = CellCache::new();
        cold.attach_disk(Arc::new(DiskCache::open(&dir).expect("open store")));
        let a = cold.allocate(DesignKind::Jumanji, &input);
        let warm = CellCache::new();
        warm.attach_disk(Arc::new(DiskCache::open(&dir).expect("open store")));
        let b = warm.allocate(DesignKind::Jumanji, &input);
        assert_eq!(a, b);
        assert_eq!(warm.stats().disk.expect("disk attached").hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_flags_are_recognised() {
        // Parsing only: the global cache is shared with other tests, so
        // this avoids flipping it.
        let plain: Vec<String> = vec!["--mixes".into(), "2".into()];
        assert!(!wants_no_cache(&plain));
        let flagged: Vec<String> = vec!["--mixes".into(), "2".into(), "--no-cache".into()];
        assert!(wants_no_cache(&flagged));
        let dir: Vec<String> = vec!["--cache-dir".into(), "/tmp/x".into()];
        assert_eq!(cache_dir_from(&dir), Some("/tmp/x".to_string()));
        let eq: Vec<String> = vec!["--cache-dir=/tmp/y".into()];
        assert_eq!(cache_dir_from(&eq), Some("/tmp/y".to_string()));
    }
}
