//! Fig. 11: LLC port attack demonstration — attacker access times vs.
//! wall-clock time while a 3-thread victim rotates through flooding each
//! of the 12 LLC banks.

use jumanji::attacks::port::{run_port_attack, PortAttackConfig};

fn main() {
    let cfg = PortAttackConfig::default();
    let trace = run_port_attack(cfg);
    println!("# Fig. 11: attacker timing (cycles per access, sampled every 100 accesses)");
    println!("t_kcycles\tcycles_per_access\tvictim_bank");
    for s in &trace.samples {
        println!(
            "{:.1}\t{:.2}\t{}",
            s.at as f64 / 1e3,
            s.cycles_per_access,
            s.victim_bank
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string())
        );
    }
    println!("# summary:");
    println!(
        "# baseline (victim idle): {:.1} cycles/access",
        trace.baseline()
    );
    println!(
        "# victim on other banks (NoC contention): {:.1} cycles/access",
        trace.other_bank_level()
    );
    println!(
        "# victim on attacker's bank (port contention): {:.1} cycles/access",
        trace.same_bank_level()
    );
    println!(
        "# attacker detects victim's bank: {}",
        trace.detects_victim(2.0)
    );
    println!("# expected: 12 bumps (one per victim bank), with the attacker-bank bump highest");
    println!("# (paper: avg time > 32 cycles during same-bank contention).");
}
