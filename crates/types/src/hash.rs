//! A cheap deterministic 64-bit mixer used wherever the hardware hashes an
//! address (VTB descriptor indexing, UMON set sampling, bank striping).
//!
//! Table-lookup-plus-hash is all the Jigsaw/Jumanji hardware needs
//! (Sec. IV-A), so a single well-mixed integer hash shared by every
//! component keeps the simulation self-consistent and reproducible.

/// Mixes a 64-bit value (splitmix64 finalizer).
///
/// # Examples
///
/// ```
/// use nuca_types::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`std::hash::BuildHasher`] wrapping [`mix64`], for hot-path hash maps
/// keyed by addresses or ids.
///
/// SipHash (the standard-library default) costs tens of nanoseconds per
/// lookup; the simulator's keys are already well-distributed integers, so
/// a single splitmix64 round is both faster and — unlike `RandomState` —
/// deterministic across runs, which the byte-identical-output guarantee
/// requires of every structure on the simulated path.
///
/// # Examples
///
/// ```
/// use nuca_types::hash::Mix64Build;
/// use std::collections::HashMap;
/// let mut m: HashMap<u64, u32, Mix64Build> = HashMap::default();
/// m.insert(7, 1);
/// assert_eq!(m.get(&7), Some(&1));
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct Mix64Build;

impl std::hash::BuildHasher for Mix64Build {
    type Hasher = Mix64Hasher;
    fn build_hasher(&self) -> Mix64Hasher {
        Mix64Hasher { state: 0 }
    }
}

/// The hasher produced by [`Mix64Build`]: folds every written word through
/// [`mix64`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Mix64Hasher {
    state: u64,
}

impl std::hash::Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (e.g. tuple or struct keys): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix64(self.state ^ v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mixes_low_bits_into_high_entropy() {
        // Consecutive inputs should land in different buckets of a small
        // modulus almost always.
        let buckets: HashSet<u64> = (0..128u64).map(|i| mix64(i) % 128).collect();
        assert!(buckets.len() > 70, "got {} distinct buckets", buckets.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
    }

    #[test]
    fn uniformity_over_banks() {
        // Hashing a large address range modulo 20 banks should be near
        // uniform (within 5% relative).
        let mut counts = [0u64; 20];
        let n = 200_000u64;
        for i in 0..n {
            counts[(mix64(i) % 20) as usize] += 1;
        }
        let expect = n as f64 / 20.0;
        for c in counts {
            assert!((c as f64 - expect).abs() / expect < 0.05);
        }
    }
}
