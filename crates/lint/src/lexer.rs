//! A hand-rolled, literal- and comment-aware Rust tokenizer.
//!
//! The lint's rules are lexical: they look for identifier patterns like
//! `HashMap::new` or `Instant :: now` that must *not* match inside
//! string literals, char literals, or comments (`"HashMap::new()"` in a
//! test assertion is not a violation). A full parser (`syn`) would be
//! overkill and would break the workspace's vendored-shim policy, so
//! this module implements just enough of the Rust lexical grammar to
//! classify every byte of a source file:
//!
//! - line comments and *nested* block comments,
//! - string likes: `"…"`, raw strings `r"…"`/`r#"…"#` at any hash
//!   depth, byte strings `b"…"`/`br#"…"#`, and C strings `c"…"`,
//! - char and byte-char literals (`'x'`, `'\''`, `b'\xFF'`) vs.
//!   lifetimes (`'a`, `'static`, `'_`),
//! - raw identifiers (`r#type`), numbers (including `1.5e-3`, `0xFF`,
//!   and `1..2` — the range dots are *not* part of the number), and
//!   single-character punctuation.
//!
//! Tokens carry byte spans and 1-based line/column positions; the bytes
//! between consecutive tokens are always pure whitespace, so the token
//! stream is a lossless partition of the input (the lexer proptests pin
//! this round-trip).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers).
    Ident,
    /// A numeric literal.
    Number,
    /// Any string-like literal (plain, raw, byte, C).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A `// …` comment (terminating newline excluded).
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind plus its byte span and source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Is `c` an identifier start? (ASCII-only: the workspace is ASCII.)
fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

/// Is `c` an identifier continuation?
fn ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed),
    /// honouring `\` escapes. Unterminated strings run to EOF.
    fn eat_quoted(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body: `"…"` terminated by `"` followed by
    /// `hashes` `#` characters (opening `"` already consumed). No
    /// escapes exist in raw strings.
    fn eat_raw(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == b'"' && (0..hashes).all(|i| self.peek(i) == Some(b'#')) {
                self.bump_n(hashes);
                return;
            }
        }
    }

    /// Consumes a char-literal body (opening `'` already consumed).
    fn eat_char_lit(&mut self) {
        match self.peek(0) {
            Some(b'\\') => {
                self.bump_n(2);
                // Multi-char escapes: \x41, \u{1F600}.
                while let Some(c) = self.peek(0) {
                    if c == b'\'' {
                        self.bump();
                        return;
                    }
                    if c == b'\n' {
                        return; // malformed; don't swallow the file
                    }
                    self.bump();
                }
            }
            Some(_) => {
                // One (possibly multi-byte) character, then the quote.
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c == b'\'' {
                        self.bump();
                        return;
                    }
                    if c.is_ascii() {
                        return; // malformed
                    }
                    self.bump(); // UTF-8 continuation bytes
                }
            }
            None => {}
        }
    }

    /// Consumes a number starting at the current digit. Range dots
    /// (`1..4`) and method calls (`1.max(2)`) are left out; embedded
    /// dots followed by a digit (`1.5`) and exponent signs (`1e-3`)
    /// are kept.
    fn eat_number(&mut self) {
        while let Some(c) = self.peek(0) {
            if ident_cont(c) {
                let prev = self.src[self.pos];
                self.bump();
                // Exponent sign: `1e-3` / `2.5E+7` (decimal only; a
                // hex literal's `e` is a digit, but hex has no `+`/`-`
                // continuation worth chasing).
                if (prev == b'e' || prev == b'E')
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && self.peek(1) != Some(b'.')
            {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes an identifier run and returns its byte length.
    fn eat_ident(&mut self) {
        while self.peek(0).is_some_and(ident_cont) {
            self.bump();
        }
    }
}

/// How many `#` characters follow `"ahead"` bytes from the cursor.
fn count_hashes(lx: &Lexer, ahead: usize) -> usize {
    let mut n = 0;
    while lx.peek(ahead + n) == Some(b'#') {
        n += 1;
    }
    n
}

/// Tokenizes `src`. Never fails: malformed input degrades to punct
/// tokens rather than a panic, so the lint can run over any file the
/// compiler has not seen yet.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (start, line, col) = (lx.pos, lx.line, lx.col);
        let kind = match c {
            b'/' if lx.peek(1) == Some(b'/') => {
                while lx.peek(0).is_some_and(|c| c != b'\n') {
                    lx.bump();
                }
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.eat_quoted();
                TokenKind::Str
            }
            b'\'' => {
                // Lifetime iff an identifier follows and the char after
                // it is not a closing quote (`'a` vs `'a'`).
                let is_lifetime = lx.peek(1).is_some_and(ident_start) && {
                    let mut k = 2;
                    while lx.peek(k).is_some_and(ident_cont) {
                        k += 1;
                    }
                    lx.peek(k) != Some(b'\'')
                };
                lx.bump();
                if is_lifetime {
                    lx.eat_ident();
                    TokenKind::Lifetime
                } else {
                    lx.eat_char_lit();
                    TokenKind::Char
                }
            }
            c if ident_start(c) => {
                // Literal prefixes and raw identifiers first.
                let two = (c, lx.peek(1));
                match two {
                    // r"…" / r#"…"# / r#ident
                    (b'r', Some(b'"')) => {
                        lx.bump_n(2);
                        lx.eat_raw(0);
                        TokenKind::Str
                    }
                    (b'r', Some(b'#')) => {
                        let hashes = count_hashes(&lx, 1);
                        if lx.peek(1 + hashes) == Some(b'"') {
                            lx.bump_n(2 + hashes);
                            lx.eat_raw(hashes);
                            TokenKind::Str
                        } else {
                            // Raw identifier r#type.
                            lx.bump_n(2);
                            lx.eat_ident();
                            TokenKind::Ident
                        }
                    }
                    // b"…" / b'…' / br#"…"#
                    (b'b', Some(b'"')) => {
                        lx.bump_n(2);
                        lx.eat_quoted();
                        TokenKind::Str
                    }
                    (b'b', Some(b'\'')) => {
                        lx.bump_n(2);
                        lx.eat_char_lit();
                        TokenKind::Char
                    }
                    (b'b', Some(b'r')) if matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                        let hashes = count_hashes(&lx, 2);
                        if lx.peek(2 + hashes) == Some(b'"') {
                            lx.bump_n(3 + hashes);
                            lx.eat_raw(hashes);
                            TokenKind::Str
                        } else {
                            lx.eat_ident();
                            TokenKind::Ident
                        }
                    }
                    // c"…" / cr#"…"#
                    (b'c', Some(b'"')) => {
                        lx.bump_n(2);
                        lx.eat_quoted();
                        TokenKind::Str
                    }
                    (b'c', Some(b'r')) if matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                        let hashes = count_hashes(&lx, 2);
                        if lx.peek(2 + hashes) == Some(b'"') {
                            lx.bump_n(3 + hashes);
                            lx.eat_raw(hashes);
                            TokenKind::Str
                        } else {
                            lx.eat_ident();
                            TokenKind::Ident
                        }
                    }
                    _ => {
                        lx.eat_ident();
                        TokenKind::Ident
                    }
                }
            }
            c if c.is_ascii_digit() => {
                lx.eat_number();
                TokenKind::Number
            }
            _ => {
                lx.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: lx.pos,
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let ks = kinds("let x2 = 1.5e-3 + 0xFF;");
        assert_eq!(ks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ks[1], (TokenKind::Ident, "x2".into()));
        assert_eq!(ks[3], (TokenKind::Number, "1.5e-3".into()));
        assert_eq!(ks[5], (TokenKind::Number, "0xFF".into()));
    }

    #[test]
    fn range_dots_are_not_number_parts() {
        let ks = kinds("0..10");
        assert_eq!(ks[0], (TokenKind::Number, "0".into()));
        assert_eq!(ks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[3], (TokenKind::Number, "10".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "HashMap::new() // not code"; x"#;
        let ks = kinds(src);
        assert_eq!(ks[3].0, TokenKind::Str);
        assert_eq!(ks[5], (TokenKind::Ident, "x".into()));
        assert_eq!(ks.len(), 6);
    }

    #[test]
    fn raw_strings_at_depth() {
        let src = r##"r#"a "quoted" b"# tail"##;
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1], (TokenKind::Ident, "tail".into()));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ks = kinds("r#type x");
        assert_eq!(ks[0], (TokenKind::Ident, "r#type".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a str; 'x'; '\\''; '\\u{1F600}'; &'static u8");
        assert_eq!(ks[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(ks[4], (TokenKind::Char, "'x'".into()));
        assert_eq!(ks[6], (TokenKind::Char, "'\\''".into()));
        assert_eq!(ks[8], (TokenKind::Char, "'\\u{1F600}'".into()));
        assert_eq!(ks[11], (TokenKind::Lifetime, "'static".into()));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("a /* x /* y */ z */ b");
        assert_eq!(ks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(ks[1].0, TokenKind::BlockComment);
        assert_eq!(ks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let src = "x // trailing HashMap::new()\ny";
        let ks = kinds(src);
        assert_eq!(ks[1].0, TokenKind::LineComment);
        assert_eq!(ks[2], (TokenKind::Ident, "y".into()));
        assert_eq!(lex(src)[2].line, 2);
    }

    #[test]
    fn byte_and_c_strings() {
        let ks = kinds(r#"b"bytes" b'\xFF' c"cstr" br"raw" x"#);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1].0, TokenKind::Char);
        assert_eq!(ks[2].0, TokenKind::Str);
        assert_eq!(ks[3].0, TokenKind::Str);
        assert_eq!(ks[4], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn positions_are_one_based_and_tracked() {
        let src = "ab\n  cd";
        let ts = lex(src);
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn tokens_partition_the_input() {
        let src = "fn main() { let s = \"a /* not a comment */\"; } // done";
        let ts = lex(src);
        let mut pos = 0;
        for t in &ts {
            assert!(src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()));
            pos = t.end;
        }
        assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));
    }
}
