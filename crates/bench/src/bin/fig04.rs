//! Fig. 4: how the LLC designs behave over time on the case study —
//! (a) average end-to-end xapian latency, (b) average LLC allocation for
//! xapian, and (c) vulnerability to shared-cache-structure attacks.

use jumanji::prelude::*;
use jumanji::types::Seconds;

fn main() {
    let opts = SimOptions {
        duration: Seconds(4.0),
        ..SimOptions::default()
    };
    let mix = case_study_mix(1);
    println!("# Fig. 4: case study over time (4 VMs x [xapian + 4 batch], high load)");
    println!("design\tt_ms\tavg_latency_ms\tavg_alloc_mb\tvulnerability");
    for design in DesignKind::main_four() {
        let exp = Experiment::new(mix.clone(), LcLoad::High, opts.clone());
        let r = exp.run(design);
        for rec in &r.timeline {
            let lat: Vec<f64> = rec.lc_mean_latency_ms.iter().flatten().copied().collect();
            let avg_lat = if lat.is_empty() {
                f64::NAN
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            };
            let avg_alloc = rec.lc_alloc_bytes.iter().sum::<f64>()
                / rec.lc_alloc_bytes.len() as f64
                / 1048576.0;
            println!(
                "{}\t{:.0}\t{:.3}\t{:.3}\t{:.2}",
                design, rec.t_ms, avg_lat, avg_alloc, rec.vulnerability
            );
        }
    }
    println!("# expected shapes: Jigsaw's latency grows over time (starved LC allocation);");
    println!("# Adaptive/VM-Part hold latency low with more space than Jumanji;");
    println!("# vulnerability: S-NUCA designs = 15, Jigsaw small, Jumanji = 0.");
}
