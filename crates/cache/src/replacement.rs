//! Replacement policies: LRU and the RRIP family (SRRIP, BRRIP, DRRIP).
//!
//! DRRIP's set-dueling state (the PSEL counter) lives in
//! [`crate::CacheBank`], because set-dueling is a *bank-granularity*
//! mechanism — that sharing is exactly the performance-leakage channel the
//! paper demonstrates in Sec. VI-C.

/// Which replacement policy a cache bank uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplPolicy {
    /// True least-recently-used.
    Lru,
    /// Static RRIP: insert at "long re-reference" (RRPV = max-1), promote to
    /// 0 on hit \[Jaleel et al., ISCA'10\].
    Srrip,
    /// Bimodal RRIP: insert at "distant" (RRPV = max) most of the time,
    /// occasionally at "long".
    Brrip,
    /// Dynamic RRIP: chooses between SRRIP and BRRIP per bank via
    /// set-dueling on a shared PSEL counter.
    Drrip,
    /// Not-recently-used: one reference bit per line (equivalent to 1-bit
    /// RRIP). Has no set-dueling state, so it exhibits no cross-partition
    /// performance leakage — a useful ablation against DRRIP.
    Nru,
}

impl ReplPolicy {
    /// True for the RRIP family (uses RRPV counters instead of LRU stacks).
    pub fn is_rrip(self) -> bool {
        !matches!(self, ReplPolicy::Lru)
    }

    /// Maximum re-reference prediction value for this policy's counters.
    pub(crate) fn rrpv_max(self) -> u8 {
        match self {
            ReplPolicy::Nru => 1,
            _ => RRPV_MAX,
        }
    }
}

/// Maximum re-reference prediction value for 2-bit RRIP.
pub(crate) const RRPV_MAX: u8 = 3;

/// BRRIP inserts at "long" (rather than "distant") once every this many
/// insertions.
pub(crate) const BRRIP_LONG_INTERVAL: u32 = 32;

/// Per-line replacement metadata.
///
/// For LRU this is a logical timestamp (bigger = more recent); for RRIP it
/// is the 2-bit RRPV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplState {
    Lru { stamp: u64 },
    Rrip { rrpv: u8 },
}

/// The concrete insertion flavour a DRRIP bank resolved to for one fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InsertFlavor {
    Srrip,
    Brrip,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrip_family_classification() {
        assert!(!ReplPolicy::Lru.is_rrip());
        assert!(ReplPolicy::Srrip.is_rrip());
        assert!(ReplPolicy::Brrip.is_rrip());
        assert!(ReplPolicy::Drrip.is_rrip());
        assert!(ReplPolicy::Nru.is_rrip());
    }

    #[test]
    fn rrpv_ranges() {
        assert_eq!(ReplPolicy::Nru.rrpv_max(), 1);
        assert_eq!(ReplPolicy::Srrip.rrpv_max(), 3);
    }
}
