#!/usr/bin/env sh
# Repo verification: formatting, lints, the full test suite, and a quick
# end-to-end pass of the experiment engine (including the parallel-vs-
# serial byte-identity guarantee). Run from the repo root:
#
#   sh scripts/verify.sh
#
# Builds are offline (--offline): the workspace vendors shims for its few
# external dev-dependencies, so no network access is required.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --offline --release

echo "== cargo test --release"
cargo test --offline --release --workspace

echo "== golden-trace regression (flat kernels vs pre-refactor fixtures)"
cargo test --offline --release -p jumanji --test golden_trace

echo "== golden-analytic regression (epoch engine vs pre-refactor fixtures)"
cargo test --offline --release -p jumanji --test golden_analytic

echo "== cargo bench smoke (one iteration per benchmark, no statistics)"
JUMANJI_BENCH_SMOKE=1 cargo bench --offline

echo "== quick suite: timings (runs every heavy binary at --mixes 4)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/timings --out "$tmp"
cat "$tmp/BENCH_suite.json"

echo "== parallel output is byte-identical to serial"
./target/release/fig13 --mixes 2 --threads 1 >"$tmp/t1.tsv"
./target/release/fig13 --mixes 2 --threads 4 >"$tmp/t4.tsv"
cmp "$tmp/t1.tsv" "$tmp/t4.tsv"
./target/release/validate --threads 1 >"$tmp/v1.tsv"
./target/release/validate --threads 4 >"$tmp/v4.tsv"
cmp "$tmp/v1.tsv" "$tmp/v4.tsv"
./target/release/fig02 --threads 1 >"$tmp/f1.tsv"
./target/release/fig02 --threads 4 >"$tmp/f4.tsv"
cmp "$tmp/f1.tsv" "$tmp/f4.tsv"

echo "verify: OK"
