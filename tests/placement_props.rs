//! Property-based tests over the placement algorithms: for arbitrary
//! (well-formed) inputs, every design must produce capacity-conserving
//! allocations, Jumanji must isolate VMs, and the controller-assigned
//! latency-critical sizes must be honoured.

use jumanji::cache::MissCurve;
use jumanji::core::{AppKind, AppModel, DesignKind, PlacementInput};
use jumanji::prelude::*;
use jumanji::types::{AppId, BankId, CoreId, VmId};
use proptest::prelude::*;

const MB: f64 = 1048576.0;

/// Builds a random but well-formed placement input: 4 VMs in quadrants,
/// per-app random working sets, rates, and LC sizes.
fn arb_input() -> impl Strategy<Value = PlacementInput> {
    let app = (10.0f64..200.0, 1.0f64..30.0, 0.2f64..1.0);
    (
        proptest::collection::vec(app, 20),
        proptest::collection::vec(0.5f64..4.5, 4),
    )
        .prop_map(|(apps_params, lc_sizes_mb)| {
            let cfg = SystemConfig::micro2020();
            let unit = cfg.llc.way_bytes();
            let units = cfg.llc.total_ways() as usize;
            let quadrants: [[usize; 5]; 4] = [
                [0, 1, 5, 6, 2],
                [4, 3, 9, 8, 7],
                [15, 16, 10, 11, 12],
                [19, 18, 14, 13, 17],
            ];
            let mut apps = Vec::new();
            let mut lc_sizes = Vec::new();
            for (vm, cores) in quadrants.iter().enumerate() {
                for (i, &core) in cores.iter().enumerate() {
                    let id = AppId(apps.len());
                    let (ws_units, rate_scale, drop) = apps_params[apps.len()];
                    let kind = if i == 0 {
                        AppKind::LatencyCritical
                    } else {
                        AppKind::Batch
                    };
                    let pts: Vec<f64> = (0..=units)
                        .map(|u| {
                            let base = 1e7 * rate_scale;
                            base * (1.0 - drop) + base * drop / (1.0 + u as f64 / ws_units)
                        })
                        .collect();
                    apps.push(AppModel {
                        id,
                        vm: VmId(vm),
                        core: CoreId(core),
                        kind,
                        curve: MissCurve::new(unit, pts).convex_hull(),
                        access_rate: 1e7 * rate_scale,
                    });
                    lc_sizes.push(if kind == AppKind::LatencyCritical {
                        lc_sizes_mb[vm] * MB
                    } else {
                        0.0
                    });
                }
            }
            PlacementInput {
                cfg,
                apps,
                lc_sizes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_design_conserves_capacity(input in arb_input()) {
        for design in DesignKind::all() {
            let alloc = design.allocate(&input);
            prop_assert!(alloc.validate(&input.cfg).is_ok(), "{design}");
        }
    }

    #[test]
    fn jumanji_always_isolates_vms(input in arb_input()) {
        let alloc = DesignKind::Jumanji.allocate(&input);
        prop_assert!(alloc.vm_isolated(&input));
        // Every app's vulnerability is exactly zero.
        for a in &input.apps {
            prop_assert_eq!(alloc.attackers(&input, a.id), 0.0);
        }
    }

    #[test]
    fn tail_aware_designs_honour_lc_sizes(input in arb_input()) {
        for design in [DesignKind::Adaptive, DesignKind::VmPart, DesignKind::Jumanji] {
            let alloc = design.allocate(&input);
            for a in &input.apps {
                if a.kind == AppKind::LatencyCritical {
                    let got = alloc.of(a.id).total_bytes();
                    let want = input.lc_size(a.id);
                    prop_assert!(
                        (got - want).abs() < 1.0,
                        "{design}: {} got {got} wanted {want}", a.id
                    );
                }
            }
        }
    }

    #[test]
    fn dnuca_designs_place_closer_than_snuca(input in arb_input()) {
        let snuca = DesignKind::Adaptive.allocate(&input);
        let jumanji = DesignKind::Jumanji.allocate(&input);
        let avg = |alloc: &jumanji::core::Allocation| -> f64 {
            input
                .apps
                .iter()
                .map(|a| alloc.avg_distance(&input, a.id))
                .sum::<f64>()
                / input.apps.len() as f64
        };
        prop_assert!(avg(&jumanji) < avg(&snuca));
    }

    #[test]
    fn whole_llc_is_allocated_by_jumanji(input in arb_input()) {
        let alloc = DesignKind::Jumanji.allocate(&input);
        let total: f64 = input
            .apps
            .iter()
            .map(|a| alloc.of(a.id).total_bytes())
            .sum();
        let llc = input.cfg.llc.total_bytes() as f64;
        // Sub-unit rounding slack only.
        prop_assert!(total > 0.97 * llc, "allocated {total} of {llc}");
    }

    #[test]
    fn occupants_reflect_placements(input in arb_input()) {
        let alloc = DesignKind::Jigsaw.allocate(&input);
        for bank in 0..input.cfg.llc.num_banks {
            for app in alloc.occupants(BankId(bank)) {
                let holds = alloc
                    .placement_of(app)
                    .iter()
                    .any(|(b, bytes)| b.index() == bank && *bytes > 0.0);
                prop_assert!(holds);
            }
        }
    }
}
