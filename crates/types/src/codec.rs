//! A compact, hand-rolled binary codec for the disk-backed result store.
//!
//! The workspace builds offline with no serialization crates, so the
//! persistent cell cache frames its entries with this module instead of
//! serde: little-endian primitives behind a checked reader that can
//! never panic on hostile bytes, plus a versioned envelope
//! ([`encode_entry`]/[`decode_entry`]) carrying a magic number, format
//! version, payload kind, length, and a content checksum. A truncated,
//! bit-flipped, or stale-format file decodes to an [`Err`] — the store
//! deletes it and recomputes — never to a wrong value.
//!
//! # Examples
//!
//! ```
//! use nuca_types::codec::{decode_entry, encode_entry, ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.u64(7);
//! w.f64(1.5);
//! w.str("xapian");
//! let file = encode_entry(3, w.into_bytes());
//!
//! let payload = decode_entry(3, &file).unwrap();
//! let mut r = ByteReader::new(payload);
//! assert_eq!(r.u64().unwrap(), 7);
//! assert_eq!(r.f64().unwrap(), 1.5);
//! assert_eq!(r.str().unwrap(), "xapian");
//! r.finish().unwrap();
//! ```

use crate::hash::fingerprint128;

/// Magic number opening every store entry (`"JMNJ"` little-endian).
pub const MAGIC: u32 = 0x4A4E_4D4A;

/// Format version of the envelope *and* every payload codec behind it.
///
/// Bump this whenever any persisted payload layout changes; old files
/// then fail [`decode_entry`] with [`CodecError::WrongVersion`] and are
/// dropped and recomputed instead of being misread.
///
/// Version history: 1 — initial layout (runs, allocs, model, costs);
/// 2 — `MeasuredCosts` gained a detailed-simulator row and the store
/// gained `details/` entries carrying [`DetailReport`]-shaped payloads.
pub const FORMAT_VERSION: u16 = 2;

/// Why a decode was rejected. Every variant means "drop this entry and
/// recompute" — none is a caller bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value (or envelope) it should hold.
    Truncated,
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope was written by a different [`FORMAT_VERSION`].
    WrongVersion,
    /// The envelope's payload kind is not the one the caller expected.
    WrongKind,
    /// The payload bytes do not match the stored checksum.
    BadChecksum,
    /// A structurally invalid value (bad enum tag, non-finite float where
    /// one is required, absurd length, invalid UTF-8, trailing bytes).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "entry truncated"),
            CodecError::BadMagic => write!(f, "bad magic number"),
            CodecError::WrongVersion => write!(f, "wrong format version"),
            CodecError::WrongKind => write!(f, "wrong entry kind"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Growable little-endian byte sink. Infallible: writing only appends.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (lossless on every supported target).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern — the round trip is bit-exact, so
    /// values formatted downstream (TSVs) come back byte-identical.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.f64(*v);
        }
    }
}

/// Checked little-endian reader over a borrowed payload. Every accessor
/// returns `Err` instead of panicking when the bytes run out.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let b = self.take(16)?;
        let mut w = [0u8; 16];
        w.copy_from_slice(b);
        Ok(u128::from_le_bytes(w))
    }

    /// Reads a `u64` written by [`ByteWriter::usize`] back into `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflow"))
    }

    /// Reads an `f64` by bit pattern (bit-exact round trip).
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix written by a `u32` count, bounded so a
    /// corrupt length cannot trigger a huge allocation: the count may
    /// never exceed the bytes actually remaining.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Malformed("invalid utf-8"))
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Succeeds only when every byte has been consumed — trailing bytes
    /// mean the payload layout disagrees with the decoder.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }
}

/// Envelope header size: magic (4) + version (2) + kind (2) + payload
/// length (8) + checksum (8).
const HEADER_BYTES: usize = 24;

/// Checksum of a payload: the low half of its 128-bit content
/// fingerprint. 64 bits is far beyond what bit-rot detection needs.
fn checksum(payload: &[u8]) -> u64 {
    fingerprint128(payload) as u64
}

/// Wraps `payload` in the versioned, checksummed store envelope.
///
/// `kind` tags what the payload encodes (run cell, allocation, model
/// memo, cost table) so a file renamed across namespaces cannot be
/// misparsed as the wrong type.
pub fn encode_entry(kind: u16, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the envelope of `bytes` and returns the payload slice.
///
/// Checks, in order: header present, magic, format version, expected
/// `kind`, exact payload length (no truncation, no trailing garbage),
/// and content checksum. Any failure is a [`CodecError`], never a panic.
pub fn decode_entry(kind: u16, bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let mut r = ByteReader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if r.u16()? != FORMAT_VERSION {
        return Err(CodecError::WrongVersion);
    }
    if r.u16()? != kind {
        return Err(CodecError::WrongKind);
    }
    let len = r.u64()?;
    let sum = r.u64()?;
    let payload = &bytes[HEADER_BYTES..];
    if (payload.len() as u64) != len {
        return Err(CodecError::Truncated);
    }
    if checksum(payload) != sum {
        return Err(CodecError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(5);
        w.u16(1234);
        w.u32(7);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX / 3);
        w.usize(42);
        w.f64(-0.0);
        w.str("moses⚡");
        w.f64s(&[1.0, f64::NAN, f64::INFINITY]);
        encode_entry(9, w.into_bytes())
    }

    #[test]
    fn round_trips_every_primitive() {
        let file = sample_entry();
        let payload = decode_entry(9, &file).expect("valid entry");
        let mut r = ByteReader::new(payload);
        assert_eq!(r.u8().unwrap(), 5);
        assert_eq!(r.u16().unwrap(), 1234);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.usize().unwrap(), 42);
        // -0.0 round-trips by bits, not by value.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "moses⚡");
        let fs = r.f64s().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], 1.0);
        assert!(fs[1].is_nan());
        assert_eq!(fs[2], f64::INFINITY);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let file = sample_entry();
        for cut in 0..file.len() {
            let err = decode_entry(9, &file[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated | CodecError::BadMagic | CodecError::BadChecksum
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let file = sample_entry();
        for byte in 0..file.len() {
            let mut bad = file.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode_entry(9, &bad).is_err(),
                "flip in byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_kind_and_magic_are_distinct_errors() {
        let file = sample_entry();
        let mut v = file.clone();
        v[4] ^= 0xFF; // version field
        assert_eq!(decode_entry(9, &v), Err(CodecError::WrongVersion));
        assert_eq!(decode_entry(8, &file), Err(CodecError::WrongKind));
        let mut m = file.clone();
        m[0] ^= 0xFF;
        assert_eq!(decode_entry(9, &m), Err(CodecError::BadMagic));
        assert_eq!(decode_entry(9, &[]), Err(CodecError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut file = sample_entry();
        file.push(0);
        assert_eq!(decode_entry(9, &file), Err(CodecError::Truncated));
    }

    #[test]
    fn corrupt_length_prefix_cannot_demand_a_huge_allocation() {
        // A payload claiming 2^31 floats but holding none must fail fast
        // on the count bound, not try to allocate gigabytes.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let file = encode_entry(1, w.into_bytes());
        let payload = decode_entry(1, &file).unwrap();
        let mut r = ByteReader::new(payload);
        assert_eq!(r.f64s(), Err(CodecError::Truncated));
    }

    #[test]
    fn reader_never_reads_past_the_end() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        // Failed reads consume nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u8(), Err(CodecError::Truncated));
        r.finish().unwrap();
    }

    #[test]
    fn strings_validate_utf8() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), Err(CodecError::Malformed("invalid utf-8")));
    }
}
