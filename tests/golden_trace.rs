//! Golden-trace regression test for the detailed simulator.
//!
//! The fixtures under `tests/fixtures/` hold a canonical rendering of the
//! [`DetailReport`] produced by the *pre-flat-kernel* implementation
//! (pointer-chasing `Vec<Vec<Option<Line>>>` banks, linear-scan TLB,
//! `HashMap` VTB) for one Jumanji and one S-NUCA configuration. The
//! flat-arena kernels must reproduce those reports bit-for-bit: every
//! access count, miss, latency sum, hop sum, port wait, TLB miss,
//! writeback, and the final per-bank occupant sets.
//!
//! Regenerate (only when an *intentional* behaviour change is made) with:
//!
//! ```sh
//! JUMANJI_UPDATE_GOLDEN=1 cargo test --release --test golden_trace
//! ```

// Test gates read their own opt-in env switches; never fingerprinted output.
#![allow(clippy::disallowed_methods)]

use jumanji::core::{AppKind, DesignKind, PlacementInput};
use jumanji::prelude::*;
use jumanji::sim::detail::{run_detailed, DetailOptions, DetailReport};
use jumanji::sim::perf::Profile;
use jumanji::telemetry::NoopSink;
use jumanji::types::{CoreId, VmId};
use jumanji::workloads::LcLoad;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders a report in a canonical, lossless text form. Floats are printed
/// with Rust's shortest-roundtrip formatting, so equal strings imply
/// bit-equal values.
fn render(report: &DetailReport) -> String {
    let mut out = String::new();
    out.push_str(
        "app\taccesses\tmisses\ttotal_latency\ttotal_hops\tport_wait\ttlb_misses\twritebacks\n",
    );
    for (i, s) in report.apps.iter().enumerate() {
        writeln!(
            out,
            "{i}\t{}\t{}\t{:?}\t{:?}\t{}\t{}\t{}",
            s.accesses,
            s.misses,
            s.total_latency,
            s.total_hops,
            s.port_wait,
            s.tlb_misses,
            s.writebacks
        )
        .expect("write to string");
    }
    for (b, occ) in report.bank_occupants.iter().enumerate() {
        let apps: Vec<String> = occ.iter().map(|a| a.index().to_string()).collect();
        writeln!(out, "bank{b}\t{}", apps.join(",")).expect("write to string");
    }
    out
}

/// The fixture workload: the paper's example placement input, identical to
/// what the `validate` binary simulates.
fn run(design: DesignKind) -> DetailReport {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let lc = tailbench();
    let batch = spec2006();
    let mut profiles = Vec::new();
    for (i, a) in input.apps.iter().enumerate() {
        profiles.push(match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        });
    }
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let opts = DetailOptions {
        cfg,
        accesses_per_app: 20_000,
        seed: 0xD5,
        ..DetailOptions::default()
    };
    run_detailed(
        &opts,
        &profiles,
        &cores,
        &vms,
        &design.allocate(&input),
        &NoopSink,
    )
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn check(design: DesignKind, fixture: &str) {
    let got = render(&run(design));
    let path = fixture_path(fixture);
    if std::env::var("JUMANJI_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with JUMANJI_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got != want {
        // Diff line-by-line so a mismatch pinpoints the first diverging app.
        for (g, w) in got.lines().zip(want.lines()) {
            assert_eq!(g, w, "detailed report diverged from golden trace");
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "report length diverged"
        );
    }
}

#[test]
fn jumanji_detail_report_matches_golden_trace() {
    check(DesignKind::Jumanji, "golden_jumanji.txt");
}

#[test]
fn snuca_detail_report_matches_golden_trace() {
    check(DesignKind::Adaptive, "golden_snuca.txt");
}
