//! Fig. 12: performance leakage through DRRIP set-dueling — img-dnn's
//! tail latency across 40 batch mixes with a fixed S-NUCA partition (red)
//! vs. a fixed D-NUCA allocation in its own banks (blue), normalized to
//! img-dnn running alone.

use jumanji::attacks::leakage::{leakage_experiment, LeakageConfig};

fn main() {
    let r = leakage_experiment(LeakageConfig::default());
    println!("# Fig. 12: img-dnn normalized tail latency, 40 mixes sorted best to worst");
    println!("mix_rank\tsnuca_norm_tail\tdnuca_norm_tail");
    for (i, (s, d)) in r
        .snuca_norm_tails
        .iter()
        .zip(&r.dnuca_norm_tails)
        .enumerate()
    {
        println!("{}\t{:.4}\t{:.4}", i + 1, s, d);
    }
    println!(
        "# S-NUCA spread (max/min - 1): {:.1}% — the fixed partition does NOT isolate performance",
        r.snuca_spread() * 100.0
    );
    println!(
        "# D-NUCA spread: {:.3}% — private banks, private replacement state",
        r.dnuca_spread() * 100.0
    );
    println!("# expected: S-NUCA varies by >10% across mixes; D-NUCA flat and lower.");
}
