//! Golden byte-identity tests for the one-process `suite` runner.
//!
//! The whole point of the shared [`CellCache`] is that it must be
//! invisible in the output: a figure rendered by `suite` — possibly
//! entirely from cells another figure already computed — must be
//! byte-identical to the standalone binary's TSV. These tests spawn the
//! real binaries (via `CARGO_BIN_EXE_*`) and `cmp` their bytes.
//!
//! The cheap checks always run. The full fig13/fig14 matrix at two
//! thread counts takes a couple of seconds per invocation, so it is
//! gated behind `JUMANJI_SUITE_GOLDEN=1` — `scripts/verify.sh` sets it.
//!
//! [`CellCache`]: jumanji_bench::cell_cache::CellCache

// Test gates read their own opt-in env switches; never fingerprinted output.
#![allow(clippy::disallowed_methods)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("jumanji_suite_golden_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs a binary with a scrubbed environment: no `JUMANJI_*` knobs leak
/// in from the outside, so the test is deterministic wherever it runs.
fn run_clean(bin: &str, args: &[&str]) -> Output {
    let out = Command::new(bin)
        .args(args)
        .env_remove("JUMANJI_TRACE")
        .env_remove("JUMANJI_MIXES")
        .env_remove("JUMANJI_THREADS")
        .env_remove("JUMANJI_ACCESSES")
        .env_remove("JUMANJI_NO_CACHE")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `suite --figures fig05` must reproduce the standalone `fig05` binary
/// byte for byte, and repeating the figure in one invocation must serve
/// the second rendering from the cache.
#[test]
fn suite_matches_standalone_and_reuses_cells() {
    let tmp = TempDir::new("cheap");
    let stats = tmp.path().join("stats.json");

    let standalone = run_clean(env!("CARGO_BIN_EXE_fig05"), &["--threads", "2"]);
    let suite = run_clean(
        env!("CARGO_BIN_EXE_suite"),
        &[
            "--figures",
            "fig05",
            "--threads",
            "2",
            "--stats",
            stats.to_str().unwrap(),
        ],
    );
    assert_eq!(
        suite.stdout, standalone.stdout,
        "suite fig05 differs from the standalone binary"
    );

    // fig04 and fig05 share the case-study experiment matrix, so running
    // both must reuse cells (fig05's Static/Jumanji/Jigsaw runs at high
    // load repeat fig04's).
    let stats2 = tmp.path().join("stats2.json");
    run_clean(
        env!("CARGO_BIN_EXE_suite"),
        &[
            "--figures",
            "fig04,fig05",
            "--threads",
            "2",
            "--stats",
            stats2.to_str().unwrap(),
        ],
    );
    let text = String::from_utf8(read(&stats2)).expect("stats JSON is UTF-8");
    let reused = read_number(&text, "\"cells_reused\":").expect("cells_reused in stats");
    assert!(
        reused > 0.0,
        "expected fig04+fig05 to reuse cells, stats: {text}"
    );
}

/// `--no-cache` must not change a single byte of output.
#[test]
fn no_cache_output_is_byte_identical() {
    let cached = run_clean(env!("CARGO_BIN_EXE_suite"), &["--figures", "fig05"]);
    let fresh = run_clean(
        env!("CARGO_BIN_EXE_suite"),
        &["--figures", "fig05", "--no-cache"],
    );
    assert_eq!(
        cached.stdout, fresh.stdout,
        "--no-cache changed the rendered TSV"
    );
}

/// An unknown figure name is a usage error (exit 2), not a crash.
#[test]
fn unknown_figure_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_suite"))
        .args(["--figures", "fig99"])
        .output()
        .expect("spawn suite");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fig99"),
        "error should name the unknown figure"
    );
}

/// The full gated matrix: fig13 + fig14 through the suite at 1 and 4
/// threads, byte-identical to the standalone binaries. fig14 renders
/// entirely from fig13's cells, so this exercises the
/// all-hits-no-computation path against real golden output.
#[test]
fn gated_fig13_fig14_match_standalone_at_all_thread_counts() {
    if std::env::var("JUMANJI_SUITE_GOLDEN").ok().as_deref() != Some("1") {
        eprintln!("skipping: set JUMANJI_SUITE_GOLDEN=1 to run the full matrix");
        return;
    }
    let tmp = TempDir::new("full");
    let mixes = "2";

    let fig13 = run_clean(env!("CARGO_BIN_EXE_fig13"), &["--mixes", mixes]);
    let fig14 = run_clean(env!("CARGO_BIN_EXE_fig14"), &["--mixes", mixes]);

    for threads in ["1", "4"] {
        let dir = tmp.path().join(format!("t{threads}"));
        run_clean(
            env!("CARGO_BIN_EXE_suite"),
            &[
                "--figures",
                "fig13,fig14",
                "--mixes",
                mixes,
                "--threads",
                threads,
                "--out",
                dir.to_str().unwrap(),
            ],
        );
        assert_eq!(
            read(&dir.join("fig13.tsv")),
            fig13.stdout,
            "suite fig13 differs at --threads {threads}"
        );
        assert_eq!(
            read(&dir.join("fig14.tsv")),
            fig14.stdout,
            "suite fig14 differs at --threads {threads}"
        );
    }
}

/// Pulls one numeric field out of the suite's stats report (same
/// minimal scan the `timings` binary uses — the schema is our own).
fn read_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == ' ' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
