//! Cross-checks between the detailed structures and the analytic models:
//! the two layers of the simulator must agree where their domains overlap.

use jumanji::cache::{BankConfig, CacheBank, PartitionId, ReplPolicy, StackProfiler};
use jumanji::noc::queueing::md1_wait;
use jumanji::noc::BankPorts;
use jumanji::types::Cycles;
use jumanji::umon::Umon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible access stream with an 80/20 hot/cold split.
fn stream(n: usize, hot_lines: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..hot_lines)
            } else {
                1_000_000 + i as u64
            }
        })
        .collect()
}

#[test]
fn umon_tracks_mattson_profiler() {
    let s = stream(200_000, 2048, 3);
    let mut umon = Umon::new(16, 32, 256);
    let mut exact = StackProfiler::new();
    for &l in &s {
        umon.observe(l);
        exact.record(l);
    }
    let est = umon.lru_curve();
    let truth = exact.miss_curve(256, 16);
    for w in [2usize, 4, 8, 16] {
        let rel = (est.at(w) - truth.at(w)).abs() / truth.at(w).max(1.0);
        assert!(rel < 0.25, "way {w}: est {} vs {}", est.at(w), truth.at(w));
    }
}

#[test]
fn detailed_lru_bank_matches_profiler_prediction() {
    // A real set-associative bank with enough sets behaves close to the
    // fully-associative stack-distance prediction.
    let s = stream(150_000, 4096, 9);
    let mut exact = StackProfiler::new();
    for &l in &s {
        exact.record(l);
    }
    let sets = 256usize;
    for ways in [4u32, 8, 16] {
        let mut bank = CacheBank::new(BankConfig {
            sets,
            ways,
            policy: ReplPolicy::Lru,
        });
        for &l in &s {
            bank.access(l, PartitionId(0));
        }
        let predicted = exact.miss_curve(sets, ways as usize).at(ways as usize);
        let measured = bank.stats().misses() as f64;
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.12,
            "ways {ways}: measured {measured} vs predicted {predicted} ({rel:.2})"
        );
    }
}

#[test]
fn drrip_bank_lands_between_lru_and_its_hull() {
    // Talus's premise: DRRIP ≈ convex hull of LRU. Our DRRIP bank should
    // never be dramatically worse than LRU on a cache-friendly stream.
    let s = stream(150_000, 3072, 5);
    let run = |policy| {
        let mut bank = CacheBank::new(BankConfig {
            sets: 128,
            ways: 16,
            policy,
        });
        for &l in &s {
            bank.access(l, PartitionId(0));
        }
        bank.stats().miss_ratio()
    };
    let lru = run(ReplPolicy::Lru);
    let drrip = run(ReplPolicy::Drrip);
    assert!(
        drrip < lru * 1.15,
        "drrip {drrip:.3} should be near/below lru {lru:.3}"
    );
}

#[test]
fn drrip_beats_lru_on_thrashing_streams() {
    // The other half of the Talus/DRRIP story: on a cyclic working set
    // slightly over capacity, LRU gets ~0 hits while BRRIP-mode DRRIP
    // retains a useful fraction — the hull is *below* the raw curve.
    let lines = 128 * 16 + 256; // just over a 128-set x 16-way cache
    let s: Vec<u64> = (0..200_000).map(|i| (i % lines) as u64).collect();
    let run = |policy| {
        let mut bank = CacheBank::new(BankConfig {
            sets: 128,
            ways: 16,
            policy,
        });
        for (i, &l) in s.iter().enumerate() {
            bank.access(l, PartitionId(0));
            if i == s.len() / 2 {
                bank.reset_stats();
            }
        }
        bank.stats().miss_ratio()
    };
    let lru = run(ReplPolicy::Lru);
    let drrip = run(ReplPolicy::Drrip);
    assert!(lru > 0.95, "LRU thrashes: {lru:.3}");
    assert!(drrip < 0.6, "DRRIP retains a stable subset: {drrip:.3}");
}

#[test]
fn event_port_sim_matches_md1_at_moderate_load() {
    // Poisson arrivals into the event-driven port vs the closed-form M/D/1
    // waiting time used by the analytic model.
    let occupancy = 4u64;
    for rho in [0.2f64, 0.5, 0.7] {
        let mut port = BankPorts::new(1, Cycles(occupancy));
        let mean_ia = occupancy as f64 / rho;
        let mut rng = StdRng::seed_from_u64(17);
        let mut t = 0.0f64;
        let mut waits = 0.0f64;
        let n = 200_000;
        for _ in 0..n {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -mean_ia * u.ln();
            let g = port.request(Cycles(t as u64));
            waits += g.start.as_u64() as f64 - (t as u64) as f64;
        }
        let measured = waits / n as f64;
        let predicted = md1_wait(rho, occupancy as f64);
        let rel = (measured - predicted).abs() / predicted.max(0.5);
        assert!(
            rel < 0.15,
            "rho {rho}: measured {measured:.2} vs M/D/1 {predicted:.2}"
        );
    }
}

#[test]
fn partitioned_bank_miss_ratio_matches_smaller_cache() {
    // Way-partitioning a 16-way bank down to 4 ways behaves like a 4-way
    // bank of the same set count (the basis of the way-granular model).
    let s = stream(120_000, 2048, 21);
    let mut partitioned = CacheBank::new(BankConfig {
        sets: 128,
        ways: 16,
        policy: ReplPolicy::Lru,
    });
    partitioned.set_mask(PartitionId(0), jumanji::cache::WayMask::first_n(4));
    let mut small = CacheBank::new(BankConfig {
        sets: 128,
        ways: 4,
        policy: ReplPolicy::Lru,
    });
    for &l in &s {
        partitioned.access(l, PartitionId(0));
        small.access(l, PartitionId(0));
    }
    let a = partitioned.stats().miss_ratio();
    let b = small.stats().miss_ratio();
    assert!((a - b).abs() < 0.02, "partitioned {a:.3} vs small {b:.3}");
}
