//! A hermetic property-testing shim exposing the subset of the
//! `proptest` API this workspace's tests use.
//!
//! Like the `rand` shim, this exists so `cargo test` works with
//! `--offline` on machines with no crates.io mirror. It keeps proptest's
//! *interface* — [`Strategy`], `proptest::collection::vec`, the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros — and a basic
//! greedy shrinker: when a case fails, [`Strategy::shrink`] proposes
//! simplifications (integers halve toward the range floor, vectors drop
//! halves and single elements, tuples shrink componentwise) and the
//! runner descends into the first candidate that still fails, reporting
//! both the original and the minimal failing input.
//!
//! Case generation is deterministic: each test's RNG is seeded from a
//! hash of its fully-qualified name, so failures reproduce across runs
//! and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-test deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the RNG from a test's fully-qualified name (FNV-1a), so
    /// every test draws an independent, reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// The next uniform 64-bit word (used by strategy impls).
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }
}

/// How a generated case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The runner descends into the first candidate that still fails
    /// the property. The default proposes nothing (no shrinking) —
    /// sound for any strategy, just unhelpfully verbose.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxed strategies compose through references too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(0, self.0.len());
        self.0[i].generate(rng)
    }
    /// Every arm may propose shrinks; arms validate their own
    /// candidates (a range arm only proposes in-range values), so
    /// suggestions from the arm that did not generate `value` are still
    /// sound — just possibly useless.
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.iter().flat_map(|arm| arm.shrink(value)).collect()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
            /// Binary descent toward the range floor: the floor itself,
            /// the midpoint, and one step down.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if self.contains(value) && *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    out.push(mid);
                    out.push(*value - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}
int_strategy!(u64, u32, usize, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if self.contains(value) && *value > self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid > self.start && mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            /// Componentwise: each component's candidates with the
            /// others held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: a fixed size or a `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo, self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        /// Structural shrinks first (keep either half, drop one
        /// element), then elementwise shrinks — all respecting the size
        /// floor.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let n = value.len();
            if n > self.size.lo {
                let target = self.size.lo.max(n / 2);
                if target < n {
                    out.push(value[..target].to_vec());
                    out.push(value[n - target..].to_vec());
                }
                for i in 0..n {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.elem.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Evaluation budget of the greedy shrink loop: total candidates tried
/// across all rounds, so a slow property can't hang minimization.
const SHRINK_BUDGET: u32 = 500;

/// Greedy minimization: repeatedly take the first [`Strategy::shrink`]
/// candidate that still fails, until none does or the budget runs out.
/// Returns the minimal failing value, its failure message, and how many
/// shrink steps were taken.
fn shrink_failure<S, F>(
    strategy: &S,
    test: &F,
    mut current: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0u32;
    let mut budget = SHRINK_BUDGET;
    'descend: loop {
        for cand in strategy.shrink(&current) {
            if budget == 0 {
                break 'descend;
            }
            budget -= 1;
            if let Err(TestCaseError::Fail(m)) = test(cand.clone()) {
                current = cand;
                msg = m;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current, msg, steps)
}

/// Runs one proptest-style test over `strategy`, minimizing any failure
/// before reporting it. Used by the [`proptest!`] macro expansion; not
/// part of the public proptest API.
pub fn run_cases<S, F>(name: &str, config: ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: Clone + core::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(config.cases);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        let value = strategy.generate(&mut rng);
        match test(value.clone()) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, min_msg, steps) =
                    shrink_failure(&strategy, &test, value.clone(), msg.clone());
                if steps == 0 {
                    panic!(
                        "{name}: case {} failed: {msg}\n    input: {value:?}",
                        accepted + 1
                    );
                }
                panic!(
                    "{name}: case {} failed: {min_msg}\n    \
                     minimal input (after {steps} shrinks): {minimal:?}\n    \
                     original input: {value:?}\n    \
                     original failure: {msg}",
                    accepted + 1
                );
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let full_name = concat!(module_path!(), "::", stringify!($name));
            // All arguments bundle into one tuple strategy so the
            // runner can shrink the whole input vector componentwise.
            let __strategy = ($($strat,)*);
            $crate::run_cases(full_name, $cfg, __strategy, |__value| {
                #[allow(unused_parens)]
                let ($($arg,)*) = __value;
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case unless `cond` holds (draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honors_fixed_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vecs");
        let fixed = crate::collection::vec(0u64..10, 7);
        assert_eq!(Strategy::generate(&fixed, &mut rng).len(), 7);
        let ranged = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&ranged, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1u64..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn oneof_picks_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..1_000_000, 10);
        let a = Strategy::generate(&strat, &mut TestRng::from_name("same"));
        let b = Strategy::generate(&strat, &mut TestRng::from_name("same"));
        let c = Strategy::generate(&strat, &mut TestRng::from_name("other"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: args bind, assume rejects, asserts
        /// pass.
        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in crate::collection::vec(0u64..10, 1..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 13);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics() {
        crate::run_cases(
            "always_fails",
            ProptestConfig::with_cases(4),
            (0u64..100,),
            |_| Err(TestCaseError::Fail("expected".to_string())),
        );
    }

    #[test]
    fn integer_shrink_is_binary_descent_to_the_floor() {
        let strat = 3u64..1000;
        // Candidates: floor, midpoint, one step down — all in range.
        let cands = Strategy::shrink(&strat, &97);
        assert_eq!(cands, vec![3, 50, 96]);
        // The floor itself has nowhere to go.
        assert!(Strategy::shrink(&strat, &3).is_empty());
    }

    #[test]
    fn vec_shrink_respects_the_size_floor() {
        let strat = crate::collection::vec(0u64..10, 2..9);
        let cands = Strategy::shrink(&strat, &vec![7, 8, 9, 1]);
        // Halves first: keep-front and keep-back of length max(2, 4/2).
        assert_eq!(cands[0], vec![7, 8]);
        assert_eq!(cands[1], vec![9, 1]);
        // Then drop-one at every position.
        assert!(cands.contains(&vec![8, 9, 1]));
        assert!(cands.contains(&vec![7, 8, 9]));
        // Every structural candidate meets the floor.
        assert!(cands.iter().all(|v| v.len() >= 2));
        // At the floor, only elementwise shrinks remain.
        let at_floor = Strategy::shrink(&strat, &vec![5, 0]);
        assert!(at_floor.iter().all(|v| v.len() == 2));
    }

    #[test]
    fn greedy_shrink_finds_the_minimal_integer() {
        // Property: x < 10 holds. The minimal counterexample is 10.
        let strat = (0u64..1000,);
        let test = |(x,): (u64,)| -> Result<(), TestCaseError> {
            if x >= 10 {
                Err(TestCaseError::Fail(format!("{x} too big")))
            } else {
                Ok(())
            }
        };
        let (minimal, msg, steps) =
            crate::shrink_failure(&strat, &test, (977,), "977 too big".to_string());
        assert_eq!(minimal, (10,));
        assert_eq!(msg, "10 too big");
        assert!(steps > 0);
    }

    #[test]
    fn greedy_shrink_minimizes_vectors_structurally() {
        // Property: fewer than 3 elements. Minimal length is 3.
        let strat = (crate::collection::vec(0u64..100, 0..20),);
        let test = |(v,): (Vec<u64>,)| -> Result<(), TestCaseError> {
            if v.len() >= 3 {
                Err(TestCaseError::Fail("too long".to_string()))
            } else {
                Ok(())
            }
        };
        let start = vec![17, 4, 99, 23, 56, 8, 71, 42];
        let (minimal, _, _) =
            crate::shrink_failure(&strat, &test, (start,), "too long".to_string());
        assert_eq!(minimal.0.len(), 3);
    }

    #[test]
    #[should_panic(expected = "minimal input")]
    fn failing_property_reports_minimal_input() {
        crate::run_cases(
            "shrinks_to_minimum",
            ProptestConfig::with_cases(16),
            (0u64..1_000_000,),
            |(x,)| {
                if x >= 5 {
                    Err(TestCaseError::Fail(format!("{x} >= 5")))
                } else {
                    Ok(())
                }
            },
        );
    }
}
